//! Graph distance measures from the literature — the "distance-measure
//! variety" (Challenge 2 of the paper) for the graph domain.
//!
//! Three measures with genuinely different information needs, mirroring the
//! SQL case study's spread:
//!
//! * [`VertexJaccard`] — Jaccard distance of vertex-label sets (label
//!   identity across graphs matters → DET territory);
//! * [`EdgeJaccard`] — Jaccard distance of edge sets (pairwise label
//!   identity matters → DET);
//! * [`DegreeSequenceDistance`] — normalized L1 between sorted degree
//!   sequences (label-*free* → even PROB preserves it, the graph analogue
//!   of the paper's "PROB for aggregate-only constants" observation).

use crate::graph::Graph;
use std::collections::BTreeSet;

/// A distance measure `d : G × G → [0, 1]` over graphs.
///
/// Implementations must be symmetric with `d(g, g) = 0`; the proptests in
/// this module enforce both.
pub trait GraphDistance {
    /// Computes `d(a, b)`.
    fn distance(&self, a: &Graph, b: &Graph) -> f64;

    /// Short measure name as used in the case-study table.
    fn name(&self) -> &'static str;
}

/// Jaccard distance over two finite sets; 0 for two empty sets.
fn jaccard_distance<T: Ord>(x: &BTreeSet<T>, y: &BTreeSet<T>) -> f64 {
    if x.is_empty() && y.is_empty() {
        return 0.0;
    }
    let inter = x.intersection(y).count() as f64;
    let union = x.union(y).count() as f64;
    1.0 - inter / union
}

/// `1 − |V₁ ∩ V₂| / |V₁ ∪ V₂]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct VertexJaccard;

impl GraphDistance for VertexJaccard {
    fn distance(&self, a: &Graph, b: &Graph) -> f64 {
        jaccard_distance(a.vertices(), b.vertices())
    }

    fn name(&self) -> &'static str {
        "vertex-jaccard"
    }
}

/// `1 − |E₁ ∩ E₂| / |E₁ ∪ E₂|`.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeJaccard;

impl GraphDistance for EdgeJaccard {
    fn distance(&self, a: &Graph, b: &Graph) -> f64 {
        jaccard_distance(a.edges(), b.edges())
    }

    fn name(&self) -> &'static str {
        "edge-jaccard"
    }
}

/// Normalized L1 distance between the sorted degree sequences, padding the
/// shorter sequence with zeros: `Σ|dᵢ − d'ᵢ| / Σ max(dᵢ, d'ᵢ)` (0 when both
/// graphs are edgeless and vertexless).
///
/// Depends only on the *multiset of degrees*, never on labels — so any
/// injective relabelling, including per-graph randomized pseudonyms,
/// preserves it exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct DegreeSequenceDistance;

impl GraphDistance for DegreeSequenceDistance {
    fn distance(&self, a: &Graph, b: &Graph) -> f64 {
        let (sa, sb) = (a.degree_sequence(), b.degree_sequence());
        let len = sa.len().max(sb.len());
        if len == 0 {
            return 0.0;
        }
        let get = |s: &[usize], i: usize| s.get(i).copied().unwrap_or(0);
        let mut num = 0usize;
        let mut den = 0usize;
        for i in 0..len {
            let (x, y) = (get(&sa, i), get(&sb, i));
            num += x.abs_diff(y);
            den += x.max(y);
        }
        if den == 0 {
            // Both graphs are edgeless; their degree multisets differ only
            // in zero-padding, which carries no structure.
            0.0
        } else {
            num as f64 / den as f64
        }
    }

    fn name(&self) -> &'static str {
        "degree-sequence"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(labels: &[&str]) -> Graph {
        let mut g = Graph::new();
        for w in labels.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        g
    }

    #[test]
    fn identical_graphs_distance_zero() {
        let g = path(&["a", "b", "c", "d"]);
        assert_eq!(VertexJaccard.distance(&g, &g), 0.0);
        assert_eq!(EdgeJaccard.distance(&g, &g), 0.0);
        assert_eq!(DegreeSequenceDistance.distance(&g, &g), 0.0);
    }

    #[test]
    fn disjoint_graphs_distance_one() {
        let g1 = path(&["a", "b", "c"]);
        let g2 = path(&["x", "y", "z"]);
        assert_eq!(VertexJaccard.distance(&g1, &g2), 1.0);
        assert_eq!(EdgeJaccard.distance(&g1, &g2), 1.0);
        // But their degree sequences are identical!
        assert_eq!(DegreeSequenceDistance.distance(&g1, &g2), 0.0);
    }

    #[test]
    fn vertex_jaccard_counts_overlap() {
        let g1 = path(&["a", "b", "c"]);
        let g2 = path(&["b", "c", "d"]);
        // V1 = {a,b,c}, V2 = {b,c,d}: |∩| = 2, |∪| = 4.
        assert!((VertexJaccard.distance(&g1, &g2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn edge_jaccard_counts_shared_edges() {
        let g1 = path(&["a", "b", "c"]);
        let g2 = path(&["b", "c", "d"]);
        // E1 = {ab, bc}, E2 = {bc, cd}: |∩| = 1, |∪| = 3.
        assert!((EdgeJaccard.distance(&g1, &g2) - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn degree_sequence_partial_difference() {
        // Star(3) degrees [3,1,1,1]; path of 4 degrees [2,2,1,1].
        let mut star = Graph::new();
        for l in ["p", "q", "r"] {
            star.add_edge("c", l);
        }
        let p4 = path(&["a", "b", "c", "d"]);
        // Sorted: [3,1,1,1] vs [2,2,1,1] → |Σdiff| = 2, Σmax = 3+2+1+1 = 7.
        let d = DegreeSequenceDistance.distance(&star, &p4);
        assert!((d - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let e = Graph::new();
        let g = path(&["a", "b"]);
        assert_eq!(VertexJaccard.distance(&e, &e), 0.0);
        assert_eq!(EdgeJaccard.distance(&e, &e), 0.0);
        assert_eq!(DegreeSequenceDistance.distance(&e, &e), 0.0);
        assert_eq!(VertexJaccard.distance(&e, &g), 1.0);
        assert_eq!(EdgeJaccard.distance(&e, &g), 1.0);
        assert_eq!(DegreeSequenceDistance.distance(&e, &g), 1.0);
    }

    #[test]
    fn edgeless_graphs_with_different_vertex_counts() {
        let mut g1 = Graph::new();
        g1.add_vertex("a");
        let mut g2 = Graph::new();
        g2.add_vertex("x");
        g2.add_vertex("y");
        // No structure to compare — degree-sequence distance is 0;
        // vertex distance sees disjoint label sets.
        assert_eq!(DegreeSequenceDistance.distance(&g1, &g2), 0.0);
        assert_eq!(VertexJaccard.distance(&g1, &g2), 1.0);
    }

    #[test]
    fn names() {
        assert_eq!(VertexJaccard.name(), "vertex-jaccard");
        assert_eq!(EdgeJaccard.name(), "edge-jaccard");
        assert_eq!(DegreeSequenceDistance.name(), "degree-sequence");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_graph() -> impl Strategy<Value = Graph> {
            // Up to 8 vertices from a small label pool, random edges.
            proptest::collection::vec((0u8..8, 0u8..8), 0..20).prop_map(|pairs| {
                let mut g = Graph::new();
                for (x, y) in pairs {
                    if x != y {
                        g.add_edge(format!("v{x}"), format!("v{y}"));
                    } else {
                        g.add_vertex(format!("v{x}"));
                    }
                }
                g
            })
        }

        proptest! {
            #[test]
            fn measures_are_symmetric_bounded(a in arb_graph(), b in arb_graph()) {
                for d in [
                    VertexJaccard.distance(&a, &b),
                    EdgeJaccard.distance(&a, &b),
                    DegreeSequenceDistance.distance(&a, &b),
                ] {
                    prop_assert!((0.0..=1.0).contains(&d), "distance out of range: {d}");
                }
                prop_assert_eq!(VertexJaccard.distance(&a, &b), VertexJaccard.distance(&b, &a));
                prop_assert_eq!(EdgeJaccard.distance(&a, &b), EdgeJaccard.distance(&b, &a));
                prop_assert_eq!(
                    DegreeSequenceDistance.distance(&a, &b),
                    DegreeSequenceDistance.distance(&b, &a)
                );
            }

            #[test]
            fn self_distance_zero(a in arb_graph()) {
                prop_assert_eq!(VertexJaccard.distance(&a, &a), 0.0);
                prop_assert_eq!(EdgeJaccard.distance(&a, &a), 0.0);
                prop_assert_eq!(DegreeSequenceDistance.distance(&a, &a), 0.0);
            }

            #[test]
            fn degree_sequence_is_relabel_invariant(a in arb_graph(), b in arb_graph()) {
                // ANY injective relabelling (here: an order-scrambling one)
                // leaves the measure unchanged — the key fact behind PROB's
                // appropriateness for this measure.
                let scramble = |v: &str| format!("zz{}", v.chars().rev().collect::<String>());
                let d_plain = DegreeSequenceDistance.distance(&a, &b);
                let d_enc = DegreeSequenceDistance.distance(&a.relabel(scramble), &b.relabel(scramble));
                prop_assert_eq!(d_plain, d_enc);
            }
        }
    }
}
