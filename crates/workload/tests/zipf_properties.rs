//! Property tests pinning the Zipf sampler's distributional shape.
//!
//! The serving benches lean on this sampler to model skewed tenant
//! traffic, so its *shape* — not just its bounds — is contract: for
//! exponent `s = 1.0` the empirical rank-frequency curve must follow the
//! power law `freq(rank) ∝ rank⁻¹`, i.e. a log-log slope of −1. The slope
//! is estimated by least squares over the head of the distribution (the
//! ranks with enough mass for a stable estimate) from 100k draws.

use dpe_workload::Zipf;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DRAWS: usize = 100_000;

fn histogram(z: &Zipf, seed: u64, draws: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut h = vec![0usize; z.len()];
    for _ in 0..draws {
        h[z.sample(&mut rng)] += 1;
    }
    h
}

/// Least-squares slope of `ln(count)` against `ln(rank)` (1-indexed ranks).
fn log_log_slope(counts: &[usize]) -> f64 {
    let points: Vec<(f64, f64)> = counts
        .iter()
        .enumerate()
        .map(|(i, &c)| (((i + 1) as f64).ln(), (c.max(1) as f64).ln()))
        .collect();
    let n = points.len() as f64;
    let (sx, sy): (f64, f64) = points
        .iter()
        .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x, b + y));
    let (sxx, sxy): (f64, f64) = points
        .iter()
        .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x * x, b + x * y));
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// s = 1.0 over 100k draws: the rank-frequency slope over the top 20
    /// ranks of a 50-rank sampler must sit at −1 (±0.12 sampling noise —
    /// rank 20 still collects ≈1.1k draws, so the estimate is tight).
    #[test]
    fn rank_frequency_slope_is_minus_one_for_s1(seed in 0u64..1_000_000) {
        let z = Zipf::new(50, 1.0);
        let h = histogram(&z, seed, DRAWS);
        let slope = log_log_slope(&h[..20]);
        prop_assert!(
            (slope + 1.0).abs() < 0.12,
            "slope {} too far from -1 (seed {})",
            slope,
            seed
        );
    }

    /// s = 0 must be uniform: the same slope machinery reports ≈ 0, and no
    /// rank strays more than 5σ from the expected count.
    #[test]
    fn zero_exponent_is_flat(seed in 0u64..1_000_000) {
        let n = 25;
        let z = Zipf::new(n, 0.0);
        let h = histogram(&z, seed, DRAWS);
        let slope = log_log_slope(&h);
        prop_assert!(slope.abs() < 0.05, "uniform slope {} not flat", slope);
        let expect = DRAWS as f64 / n as f64;
        let sigma = (DRAWS as f64 * (1.0 / n as f64) * (1.0 - 1.0 / n as f64)).sqrt();
        for (rank, &count) in h.iter().enumerate() {
            prop_assert!(
                (count as f64 - expect).abs() < 5.0 * sigma,
                "rank {} count {} vs expected {}",
                rank,
                count,
                expect
            );
        }
    }

    /// The degenerate single-rank sampler returns 0 for every exponent.
    #[test]
    fn single_rank_is_constant_for_any_exponent(
        seed in 0u64..1_000_000,
        s_millis in 0u32..4_000,
    ) {
        let z = Zipf::new(1, f64::from(s_millis) / 1_000.0);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert_eq!(z.sample(&mut rng), 0);
        }
    }
}

#[test]
fn single_rank_uniform_degenerate_combination() {
    // n = 1 with s = 0: both degenerate axes at once.
    let z = Zipf::new(1, 0.0);
    assert_eq!(z.len(), 1);
    let mut rng = StdRng::seed_from_u64(11);
    assert!(std::iter::repeat_with(|| z.sample(&mut rng))
        .take(1000)
        .all(|r| r == 0));
}

#[test]
fn steeper_exponents_concentrate_more_mass_on_rank_zero() {
    // Monotone sanity around the s = 1.0 pin: mass(rank 0) grows with s.
    let mut previous = 0usize;
    for (i, s) in [0.0, 0.5, 1.0, 2.0].into_iter().enumerate() {
        let z = Zipf::new(30, s);
        let h = histogram(&z, 0xAB + i as u64, 40_000);
        assert!(
            h[0] > previous,
            "rank-0 mass must grow with s: s={s}, {} <= {previous}",
            h[0]
        );
        previous = h[0];
    }
}
