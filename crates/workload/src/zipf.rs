//! A Zipf(s) sampler over ranks `0..n` (rank 0 most probable).
//!
//! Inverse-CDF sampling over the precomputed normalized cumulative weights
//! `w_k ∝ 1/(k+1)^s`. O(n) setup, O(log n) per sample, deterministic given
//! the RNG.

use rand::Rng;

/// Zipf-distributed rank sampler.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s ≥ 0`
    /// (`s = 0` is uniform). Panics when `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for w in &mut cdf {
            *w /= total;
        }
        // Guard against floating-point undershoot at the top.
        *cdf.last_mut().unwrap() = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` iff a single rank (degenerate).
    pub fn is_empty(&self) -> bool {
        false // constructor guarantees n > 0
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first rank whose cumulative weight
        // reaches u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(n: usize, s: f64, draws: usize) -> Vec<usize> {
        let z = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(99);
        let mut h = vec![0usize; n];
        for _ in 0..draws {
            h[z.sample(&mut rng)] += 1;
        }
        h
    }

    #[test]
    fn ranks_stay_in_bounds() {
        let z = Zipf::new(7, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn skew_orders_frequencies() {
        let h = histogram(8, 1.2, 20_000);
        // Rank 0 clearly dominates and the tail decays.
        assert!(h[0] > h[1] && h[1] > h[3] && h[3] > h[7], "{h:?}");
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let h = histogram(4, 0.0, 40_000);
        for &count in &h {
            assert!((count as f64 - 10_000.0).abs() < 700.0, "{h:?}");
        }
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let z = Zipf::new(10, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_rejected() {
        Zipf::new(0, 1.0);
    }
}
