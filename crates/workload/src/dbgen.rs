//! Seeded random database content for the sky catalog.

use crate::schema::{sky_catalog, CLASSES, INT_DOMAINS};
use crate::zipf::Zipf;
use dpe_minidb::{Database, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a populated sky-catalog database.
///
/// `photo_rows` photometric objects with ids `1..=photo_rows`; roughly one
/// third get a spectrum in `specobj` (with `bestobjid` pointing back); a
/// handful of neighbor pairs. Class frequencies are Zipf-skewed (stars
/// dominate, as in the real catalog) — the skew the frequency-analysis
/// attack in `dpe-attacks` exploits.
pub fn generate_database(photo_rows: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for schema in sky_catalog() {
        db.create_table(schema).expect("fresh database");
    }

    let dom = |name: &str| {
        INT_DOMAINS
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|&(_, lo, hi)| (lo, hi))
            .expect("domain exists")
    };
    let class_zipf = Zipf::new(CLASSES.len(), 1.1);

    let (ra_lo, ra_hi) = dom("ra");
    let (dec_lo, dec_hi) = dom("dec");
    let (rmag_lo, rmag_hi) = dom("rmag");
    for objid in 1..=photo_rows as i64 {
        let class = CLASSES[class_zipf.sample(&mut rng)];
        db.insert(
            "photoobj",
            vec![
                Value::Int(objid),
                Value::Int(rng.gen_range(ra_lo..=ra_hi)),
                Value::Int(rng.gen_range(dec_lo..=dec_hi)),
                Value::Int(rng.gen_range(rmag_lo..=rmag_hi)),
                Value::Str(class.to_string()),
            ],
        )
        .expect("photoobj row");
    }

    let (z_lo, z_hi) = dom("z");
    let mut specid = 1i64;
    for objid in 1..=photo_rows as i64 {
        if rng.gen_bool(1.0 / 3.0) {
            let class = CLASSES[class_zipf.sample(&mut rng)];
            db.insert(
                "specobj",
                vec![
                    Value::Int(specid),
                    Value::Int(objid),
                    Value::Int(rng.gen_range(z_lo..=z_hi)),
                    Value::Str(class.to_string()),
                ],
            )
            .expect("specobj row");
            specid += 1;
        }
    }

    let pairs = (photo_rows / 2).max(1);
    for _ in 0..pairs {
        db.insert(
            "neighbors",
            vec![
                Value::Int(rng.gen_range(1..=photo_rows as i64)),
                Value::Int(rng.gen_range(0..=600_000)),
            ],
        )
        .expect("neighbors row");
    }

    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = generate_database(50, 42);
        let b = generate_database(50, 42);
        assert_eq!(
            a.table("photoobj").unwrap().rows(),
            b.table("photoobj").unwrap().rows()
        );
        assert_eq!(
            a.table("specobj").unwrap().rows(),
            b.table("specobj").unwrap().rows()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_database(50, 1);
        let b = generate_database(50, 2);
        assert_ne!(
            a.table("photoobj").unwrap().rows(),
            b.table("photoobj").unwrap().rows()
        );
    }

    #[test]
    fn row_counts_plausible() {
        let db = generate_database(90, 7);
        assert_eq!(db.table("photoobj").unwrap().len(), 90);
        let spec = db.table("specobj").unwrap().len();
        assert!(spec > 10 && spec < 60, "spec rows: {spec}");
        assert!(!db.table("neighbors").unwrap().is_empty());
    }

    #[test]
    fn values_respect_domains() {
        let db = generate_database(60, 3);
        for row in db.table("photoobj").unwrap().rows() {
            let Value::Int(ra) = row[1] else { panic!() };
            let Value::Int(dec) = row[2] else { panic!() };
            assert!((0..=360_000).contains(&ra));
            assert!((-90_000..=90_000).contains(&dec));
            let Value::Str(class) = &row[4] else { panic!() };
            assert!(CLASSES.contains(&class.as_str()));
        }
    }

    #[test]
    fn spec_points_at_existing_objects() {
        let db = generate_database(40, 9);
        let max_obj = 40i64;
        for row in db.table("specobj").unwrap().rows() {
            let Value::Int(best) = row[1] else { panic!() };
            assert!((1..=max_obj).contains(&best));
        }
    }
}
