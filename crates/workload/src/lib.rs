//! # dpe-workload — synthetic SkyServer-like query logs and databases
//!
//! The paper's case study targets SQL query logs such as SkyServer's \[16\],
//! which are not redistributable. This crate generates the closest synthetic
//! equivalent (DESIGN.md §5): an astronomy-flavoured star/galaxy catalog
//! schema ([`schema`]), seeded random database content ([`dbgen`]), and a
//! query log drawn from nine analytic templates with Zipf-skewed template,
//! attribute and constant choices ([`generator`], [`zipf`]) — the skew shape
//! real query logs exhibit and the frequency-analysis attacks in
//! `dpe-attacks` rely on.
//!
//! Everything is deterministic in the seed, so every experiment in
//! EXPERIMENTS.md is reproducible byte-for-byte.
//!
//! Real-valued astronomy attributes (right ascension, declination, redshift)
//! are fixed-point scaled to integers (milli-units), keeping all distance
//! arithmetic exact — see `dpe-sql` crate docs.

#![forbid(unsafe_code)]

pub mod dbgen;
pub mod generator;
pub mod schema;
pub mod zipf;

pub use dbgen::generate_database;
pub use generator::{LogConfig, LogGenerator};
pub use schema::{sky_catalog, sky_domains, SKY_TABLES};
pub use zipf::Zipf;
