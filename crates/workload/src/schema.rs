//! The synthetic sky-catalog schema.
//!
//! Modelled on the SkyServer tables the paper's reference \[16\] mines:
//! a photometric object catalog, a spectroscopic catalog keyed to it, and a
//! neighbor pair table. Column names are globally unique across tables so
//! the unqualified attribute spellings of real query logs resolve without
//! ambiguity (and so the access-area `DomainCatalog`, which is keyed by
//! attribute name, is well-defined).

use dpe_distance::{AttributeDomain, DomainCatalog};
use dpe_minidb::{ColumnType, TableSchema};

/// The object classes of the categorical `class` attribute.
pub const CLASSES: [&str; 3] = ["STAR", "GALAXY", "QSO"];

/// Table names in creation order.
pub const SKY_TABLES: [&str; 3] = ["photoobj", "specobj", "neighbors"];

/// Fixed-point domains of the integer attributes (milli-units for angles,
/// micro for redshift; magnitudes ×100).
pub const INT_DOMAINS: [(&str, i64, i64); 8] = [
    ("objid", 1, 1_000_000),
    ("ra", 0, 360_000),       // 0..360 deg, milli-deg
    ("dec", -90_000, 90_000), // -90..90 deg, milli-deg
    ("rmag", 1_000, 2_800),   // 10.00..28.00 mag, centi-mag
    ("specid", 1, 1_000_000),
    ("bestobjid", 1, 1_000_000),
    ("z", 0, 7_000_000), // redshift 0..7, micro
    ("neighborobjid", 1, 1_000_000),
];

/// The three table schemas.
pub fn sky_catalog() -> Vec<TableSchema> {
    vec![
        TableSchema::new(
            "photoobj",
            vec![
                ("objid", ColumnType::Int),
                ("ra", ColumnType::Int),
                ("dec", ColumnType::Int),
                ("rmag", ColumnType::Int),
                ("class", ColumnType::Str),
            ],
        ),
        TableSchema::new(
            "specobj",
            vec![
                ("specid", ColumnType::Int),
                ("bestobjid", ColumnType::Int),
                ("z", ColumnType::Int),
                ("specclass", ColumnType::Str),
            ],
        ),
        TableSchema::new(
            "neighbors",
            vec![
                ("neighborobjid", ColumnType::Int),
                ("distance", ColumnType::Int),
            ],
        ),
    ]
}

/// The *Domains* shared information: every attribute's domain, for the
/// access-area measure.
pub fn sky_domains() -> DomainCatalog {
    let mut catalog = DomainCatalog::new();
    for (name, lo, hi) in INT_DOMAINS {
        catalog.insert(name, AttributeDomain::Int { lo, hi });
    }
    catalog.insert(
        "distance",
        AttributeDomain::Int { lo: 0, hi: 600_000 }, // arcsec ×1000
    );
    let classes = CLASSES.iter().map(|s| s.to_string()).collect();
    catalog.insert("class", AttributeDomain::Categorical(classes));
    let classes = CLASSES.iter().map(|s| s.to_string()).collect();
    catalog.insert("specclass", AttributeDomain::Categorical(classes));
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_build() {
        let tables = sky_catalog();
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].name, "photoobj");
        assert_eq!(tables[0].arity(), 5);
    }

    #[test]
    fn column_names_globally_unique() {
        let tables = sky_catalog();
        let mut seen = std::collections::BTreeSet::new();
        for t in &tables {
            for c in &t.columns {
                assert!(seen.insert(c.name.clone()), "duplicate column {}", c.name);
            }
        }
    }

    #[test]
    fn every_column_has_a_domain() {
        let catalog = sky_domains();
        for t in sky_catalog() {
            for c in &t.columns {
                assert!(catalog.get(&c.name).is_some(), "no domain for {}", c.name);
            }
        }
    }

    #[test]
    fn domain_kinds_match_column_types() {
        let catalog = sky_domains();
        for t in sky_catalog() {
            for c in &t.columns {
                let dom = catalog.get(&c.name).unwrap();
                match (c.ty, dom) {
                    (ColumnType::Int, AttributeDomain::Int { .. }) => {}
                    (ColumnType::Str, AttributeDomain::Categorical(_)) => {}
                    other => panic!("domain/type mismatch for {}: {other:?}", c.name),
                }
            }
        }
    }
}
