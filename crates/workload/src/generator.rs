//! The query-log generator.
//!
//! Nine analytic templates modelled on published SkyServer workload studies:
//! point lookups, sky-region range scans, class filters, top-k scans,
//! counting and arithmetic aggregates, photometric/spectroscopic joins,
//! per-class grouping, and IN-list filters. Template choice, hot-constant
//! choice and range widths are Zipf-skewed and fully seeded.

use crate::schema::CLASSES;
use crate::zipf::Zipf;
use dpe_sql::{parse_query, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a generated log.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Number of queries.
    pub queries: usize,
    /// RNG seed; equal configs generate byte-identical logs.
    pub seed: u64,
    /// Zipf exponent for template selection (0 = uniform).
    pub template_skew: f64,
    /// Zipf exponent for constant selection from each attribute's hot pool.
    pub constant_skew: f64,
    /// Size of the hot-constant pool per attribute.
    pub pool_size: usize,
    /// Restricts generation to these template ids (`0..TEMPLATE_COUNT`);
    /// `None` uses all. The result-distance experiments exclude the
    /// SUM/AVG template (5), whose Paillier-folded results carry no
    /// deterministic tuple representation.
    pub allowed_templates: Option<Vec<usize>>,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            queries: 60,
            seed: 0xD5E,
            template_skew: 0.8,
            constant_skew: 1.07,
            pool_size: 20,
            allowed_templates: None,
        }
    }
}

impl LogConfig {
    /// A configuration whose queries all have deterministic encrypted
    /// result tuples (everything except the arithmetic-aggregate template).
    pub fn result_safe(queries: usize, seed: u64) -> Self {
        LogConfig {
            queries,
            seed,
            allowed_templates: Some(vec![0, 1, 2, 3, 4, 6, 7, 8]),
            ..Default::default()
        }
    }
}

/// Generates query logs from a [`LogConfig`].
pub struct LogGenerator {
    rng: StdRng,
    template_zipf: Zipf,
    constant_zipf: Zipf,
    templates: Vec<usize>,
    ra_pool: Vec<i64>,
    dec_pool: Vec<i64>,
    rmag_pool: Vec<i64>,
    z_pool: Vec<i64>,
    objid_pool: Vec<i64>,
}

const TEMPLATE_COUNT: usize = 9;

impl LogGenerator {
    /// Builds a generator.
    pub fn new(config: &LogConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let pool = |rng: &mut StdRng, lo: i64, hi: i64, n: usize| -> Vec<i64> {
            (0..n).map(|_| rng.gen_range(lo..=hi)).collect()
        };
        let n = config.pool_size.max(1);
        let ra_pool = pool(&mut rng, 0, 360_000, n);
        let dec_pool = pool(&mut rng, -90_000, 90_000, n);
        let rmag_pool = pool(&mut rng, 1_000, 2_800, n);
        let z_pool = pool(&mut rng, 0, 7_000_000, n);
        let objid_pool = pool(&mut rng, 1, 1_000_000, n);
        let templates: Vec<usize> = match &config.allowed_templates {
            Some(list) => {
                assert!(!list.is_empty(), "allowed_templates must not be empty");
                assert!(
                    list.iter().all(|&t| t < TEMPLATE_COUNT),
                    "unknown template id"
                );
                list.clone()
            }
            None => (0..TEMPLATE_COUNT).collect(),
        };
        LogGenerator {
            rng,
            template_zipf: Zipf::new(templates.len(), config.template_skew),
            constant_zipf: Zipf::new(n, config.constant_skew),
            templates,
            ra_pool,
            dec_pool,
            rmag_pool,
            z_pool,
            objid_pool,
        }
    }

    /// Generates a full log.
    pub fn generate(config: &LogConfig) -> Vec<Query> {
        let mut generator = LogGenerator::new(config);
        (0..config.queries)
            .map(|_| generator.next_query())
            .collect()
    }

    fn hot(&mut self, pool: &'static str) -> i64 {
        let rank = self.constant_zipf.sample(&mut self.rng);
        match pool {
            "ra" => self.ra_pool[rank],
            "dec" => self.dec_pool[rank],
            "rmag" => self.rmag_pool[rank],
            "z" => self.z_pool[rank],
            "objid" => self.objid_pool[rank],
            _ => unreachable!("unknown pool {pool}"),
        }
    }

    fn class(&mut self) -> &'static str {
        CLASSES[self.constant_zipf.sample(&mut self.rng) % CLASSES.len()]
    }

    /// Emits the next query of the log.
    pub fn next_query(&mut self) -> Query {
        let template = self.templates[self.template_zipf.sample(&mut self.rng)];
        let sql = match template {
            0 => {
                let id = self.hot("objid");
                format!("SELECT ra, dec FROM photoobj WHERE objid = {id}")
            }
            1 => {
                let ra = self.hot("ra");
                let dec = self.hot("dec");
                let w: i64 = self.rng.gen_range(500..5_000);
                format!(
                    "SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN {} AND {} AND dec BETWEEN {} AND {}",
                    ra.saturating_sub(w).max(0),
                    (ra + w).min(360_000),
                    dec.saturating_sub(w).max(-90_000),
                    (dec + w).min(90_000),
                )
            }
            2 => {
                let class = self.class();
                let rmag = self.hot("rmag");
                format!("SELECT objid FROM photoobj WHERE class = '{class}' AND rmag < {rmag}")
            }
            3 => {
                let rmag = self.hot("rmag");
                let k = self.rng.gen_range(5..50);
                format!(
                    "SELECT objid, rmag FROM photoobj WHERE rmag > {rmag} ORDER BY rmag DESC LIMIT {k}"
                )
            }
            4 => {
                let class = self.class();
                format!("SELECT COUNT(*) FROM photoobj WHERE class = '{class}'")
            }
            5 => {
                let lo = self.hot("z");
                let hi = (lo + self.rng.gen_range(100_000..1_000_000)).min(7_000_000);
                format!("SELECT AVG(z), SUM(z) FROM specobj WHERE z BETWEEN {lo} AND {hi}")
            }
            6 => {
                let z = self.hot("z");
                format!(
                    "SELECT photoobj.objid, specobj.z FROM photoobj \
                     JOIN specobj ON photoobj.objid = specobj.bestobjid \
                     WHERE specobj.z > {z}"
                )
            }
            7 => {
                let rmag = self.hot("rmag");
                format!(
                    "SELECT class, COUNT(*) FROM photoobj WHERE rmag < {rmag} \
                     GROUP BY class ORDER BY class"
                )
            }
            _ => {
                let dec = self.hot("dec");
                let (c1, c2) = (self.class(), self.class());
                format!(
                    "SELECT objid FROM photoobj WHERE class IN ('{c1}', '{c2}') AND dec > {dec}"
                )
            }
        };
        parse_query(&sql).expect("generated SQL is always valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_sql::analysis;
    use std::collections::BTreeSet;

    #[test]
    fn deterministic_in_seed() {
        let cfg = LogConfig {
            queries: 40,
            ..Default::default()
        };
        assert_eq!(LogGenerator::generate(&cfg), LogGenerator::generate(&cfg));
    }

    #[test]
    fn seed_changes_log() {
        let a = LogGenerator::generate(&LogConfig {
            queries: 40,
            seed: 1,
            ..Default::default()
        });
        let b = LogGenerator::generate(&LogConfig {
            queries: 40,
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn covers_many_templates() {
        let log = LogGenerator::generate(&LogConfig {
            queries: 200,
            ..Default::default()
        });
        let shapes: BTreeSet<String> = log
            .iter()
            .map(|q| {
                let mut s = format!("{}-{}", q.from.name, q.select.len());
                if !q.joins.is_empty() {
                    s.push_str("-join");
                }
                if !q.group_by.is_empty() {
                    s.push_str("-group");
                }
                s
            })
            .collect();
        assert!(shapes.len() >= 5, "log too uniform: {shapes:?}");
    }

    #[test]
    fn all_attributes_have_known_domains() {
        let catalog = crate::schema::sky_domains();
        let log = LogGenerator::generate(&LogConfig {
            queries: 150,
            ..Default::default()
        });
        for q in &log {
            for attr in analysis::attributes(q) {
                assert!(
                    catalog.get(&attr).is_some(),
                    "attribute {attr} lacks a domain"
                );
            }
        }
    }

    #[test]
    fn hot_constants_repeat() {
        // Zipf skew must produce repeated constants — the signal the
        // frequency attack needs.
        let log = LogGenerator::generate(&LogConfig {
            queries: 150,
            ..Default::default()
        });
        let mut counts: std::collections::HashMap<String, usize> = Default::default();
        for q in &log {
            for (_, lit) in analysis::constants(q) {
                *counts.entry(lit.to_string()).or_default() += 1;
            }
        }
        let max = counts.values().copied().max().unwrap_or(0);
        assert!(max >= 5, "no hot constants (max repeat {max})");
    }

    #[test]
    fn template_filter_respected() {
        // Only the COUNT template (4): every query is an ungrouped COUNT.
        let cfg = LogConfig {
            queries: 30,
            allowed_templates: Some(vec![4]),
            ..Default::default()
        };
        for q in LogGenerator::generate(&cfg) {
            assert_eq!(q.select.len(), 1);
            assert!(
                matches!(q.select[0], dpe_sql::SelectItem::Aggregate { .. }),
                "{q}"
            );
        }
    }

    #[test]
    fn result_safe_excludes_arithmetic_aggregates() {
        let cfg = LogConfig::result_safe(120, 3);
        for q in LogGenerator::generate(&cfg) {
            for item in &q.select {
                if let dpe_sql::SelectItem::Aggregate { func, .. } = item {
                    assert!(!func.is_arithmetic(), "{q}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown template id")]
    fn bad_template_id_panics() {
        let cfg = LogConfig {
            allowed_templates: Some(vec![99]),
            ..Default::default()
        };
        LogGenerator::new(&cfg);
    }

    #[test]
    fn queries_execute_against_generated_db() {
        let db = crate::dbgen::generate_database(80, 11);
        let log = LogGenerator::generate(&LogConfig {
            queries: 120,
            ..Default::default()
        });
        for q in &log {
            dpe_minidb::execute(&db, q).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }
}
