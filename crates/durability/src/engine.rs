//! The durability engine: owns one directory of durable state and
//! mediates all WAL appends, checkpoints and recovery for a server.
//!
//! Directory layout:
//!
//! ```text
//! <dir>/MANIFEST            format version + shard count
//! <dir>/wal/shard-<i>.wal   per-shard write-ahead log
//! <dir>/snap/snap-<s>.dps   epoch-consistent snapshots, ascending seq
//! ```
//!
//! Locking: each shard's [`WalWriter`] sits behind its own `Mutex`, and
//! the server calls [`Durability::log_ingest`] while already holding that
//! shard's write lock — shard lock before WAL mutex, always, which keeps
//! the lock order acyclic. [`Durability::checkpoint`] is called with all
//! shard *read* locks held, which excludes concurrent appends, making the
//! snapshot-then-reset-WALs sequence atomic with respect to ingests.

use crate::snapshot::{encode_snapshot, read_snapshot_file, write_snapshot_file, ShardSnapshot};
use crate::wal::{read_wal, FileSink, WalRecord, WalSink, WalWriter};
use crate::DurabilityError;
use dpe_distance::DistanceMatrix;
use dpe_sql::Query;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Opens sinks for shard WALs — the seam [`crate::testkit::FailpointFs`]
/// uses to inject crash behavior under the production engine.
pub trait SinkFactory: Send + Sync {
    /// Opens (creating if needed) the append sink for one shard's WAL.
    fn open_wal(&self, shard: usize, path: &Path) -> std::io::Result<Box<dyn WalSink>>;
}

/// The production factory: plain append-mode files.
#[derive(Debug, Default, Clone, Copy)]
pub struct FsSinkFactory;

impl SinkFactory for FsSinkFactory {
    fn open_wal(&self, _shard: usize, path: &Path) -> std::io::Result<Box<dyn WalSink>> {
        Ok(Box::new(FileSink::open(path)?))
    }
}

/// Borrowed view of one shard's state for [`Durability::checkpoint`] —
/// the server builds these from held read guards, so nothing is cloned
/// to take a snapshot.
#[derive(Debug, Clone, Copy)]
pub struct ShardStateRef<'a> {
    /// The shard's current epoch.
    pub epoch: u64,
    /// The ciphertext query store.
    pub queries: &'a [Query],
    /// The packed distance matrix.
    pub matrix: &'a DistanceMatrix,
}

/// One shard's recovered state: the snapshot base plus the WAL tail to
/// re-apply (records with epoch beyond the base, contiguity-checked).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRecovery {
    /// State at the newest valid snapshot (empty/epoch-0 when none).
    pub base: ShardSnapshot,
    /// WAL records past the base epoch, in append order.
    pub tail: Vec<WalRecord>,
    /// `true` when a torn WAL tail was discarded during replay.
    pub torn_tail: bool,
}

impl ShardRecovery {
    /// The epoch the shard will reach once the tail is re-applied.
    pub fn final_epoch(&self) -> u64 {
        self.tail.last().map_or(self.base.epoch, |r| r.epoch)
    }
}

/// Counters for `ServerStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurabilityStats {
    /// WAL records appended since this engine was opened.
    pub wal_records: u64,
    /// Total bytes currently in the WAL files (headers included).
    pub wal_bytes: u64,
    /// Checkpoints taken since this engine was opened.
    pub checkpoints: u64,
    /// Sequence number of the newest snapshot on disk, if any.
    pub last_snapshot: Option<u64>,
}

const MANIFEST_VERSION: &str = "dpe-durability/v1";

/// The durability engine for one server — see the module docs for the
/// directory layout and locking contract.
pub struct Durability {
    dir: PathBuf,
    shards: usize,
    wals: Vec<Mutex<WalWriter>>,
    checkpoints: AtomicU64,
    last_snapshot: Mutex<Option<u64>>,
}

impl std::fmt::Debug for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Durability")
            .field("dir", &self.dir)
            .field("shards", &self.shards)
            .finish_non_exhaustive()
    }
}

fn io_err(context: String) -> impl FnOnce(std::io::Error) -> DurabilityError {
    move |e| DurabilityError::io(context, &e)
}

impl Durability {
    /// Opens a **fresh** durable directory for `shards` shards with the
    /// production file sinks. Refuses a directory that already holds
    /// durable state ([`DurabilityError::ExistingState`]) — recover from
    /// it instead, or pick a new directory.
    pub fn create(dir: impl Into<PathBuf>, shards: usize) -> Result<Durability, DurabilityError> {
        Durability::create_with(dir, shards, &FsSinkFactory)
    }

    /// [`Durability::create`] with a custom [`SinkFactory`] (fault
    /// injection in the crash-recovery sweep).
    pub fn create_with(
        dir: impl Into<PathBuf>,
        shards: usize,
        factory: &dyn SinkFactory,
    ) -> Result<Durability, DurabilityError> {
        let dir = dir.into();
        if dir.join("MANIFEST").exists() {
            return Err(DurabilityError::ExistingState {
                dir: dir.display().to_string(),
            });
        }
        fs::create_dir_all(dir.join("wal"))
            .map_err(io_err(format!("creating {}", dir.join("wal").display())))?;
        fs::create_dir_all(dir.join("snap"))
            .map_err(io_err(format!("creating {}", dir.join("snap").display())))?;
        fs::write(
            dir.join("MANIFEST"),
            format!("{MANIFEST_VERSION}\nshards {shards}\n"),
        )
        .map_err(io_err(format!(
            "writing {}",
            dir.join("MANIFEST").display()
        )))?;
        Durability::attach(dir, shards, factory)
    }

    /// Opens an **existing** durable directory for append + recovery,
    /// adopting the shard count recorded in its manifest.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Durability, DurabilityError> {
        Durability::open_with(dir, &FsSinkFactory)
    }

    /// [`Durability::open`] with a custom [`SinkFactory`].
    pub fn open_with(
        dir: impl Into<PathBuf>,
        factory: &dyn SinkFactory,
    ) -> Result<Durability, DurabilityError> {
        let dir = dir.into();
        let shards = Durability::manifest_shards(&dir)?;
        Durability::attach(dir, shards, factory)
    }

    /// Reads the shard count out of a directory's manifest.
    pub fn manifest_shards(dir: &Path) -> Result<usize, DurabilityError> {
        let path = dir.join("MANIFEST");
        let text =
            fs::read_to_string(&path).map_err(io_err(format!("reading {}", path.display())))?;
        let mut lines = text.lines();
        match lines.next() {
            Some(MANIFEST_VERSION) => {}
            Some(other) => {
                return Err(DurabilityError::Manifest(format!(
                    "unknown manifest version {other:?} (expected {MANIFEST_VERSION:?})"
                )))
            }
            None => return Err(DurabilityError::Manifest("empty manifest".into())),
        }
        let shards = lines
            .next()
            .and_then(|l| l.strip_prefix("shards "))
            .and_then(|n| n.parse::<usize>().ok())
            .ok_or_else(|| DurabilityError::Manifest("missing or malformed shards line".into()))?;
        if shards == 0 {
            return Err(DurabilityError::Manifest(
                "manifest declares 0 shards".into(),
            ));
        }
        Ok(shards)
    }

    /// Shared tail of create/open: truncate torn WAL tails (validating
    /// the surviving frames along the way) and position writers at the
    /// end of each valid log.
    fn attach(
        dir: PathBuf,
        shards: usize,
        factory: &dyn SinkFactory,
    ) -> Result<Durability, DurabilityError> {
        let mut wals = Vec::with_capacity(shards);
        for shard in 0..shards {
            let path = Durability::wal_path(&dir, shard);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
                Err(e) => {
                    return Err(DurabilityError::io(
                        format!("reading {}", path.display()),
                        &e,
                    ))
                }
            };
            // Corrupt frames are fatal here: appending after one would
            // bury the damage. Torn tails are expected crash damage.
            let replay = read_wal(&bytes, shard)?;
            let mut sink = factory
                .open_wal(shard, &path)
                .map_err(io_err(format!("opening {}", path.display())))?;
            if replay.torn_tail {
                sink.truncate_to(replay.valid_len).map_err(io_err(format!(
                    "truncating torn tail of {}",
                    path.display()
                )))?;
            }
            let writer = WalWriter::new(sink, replay.valid_len)
                .map_err(io_err(format!("initializing {}", path.display())))?;
            wals.push(Mutex::new(writer));
        }
        let last = Durability::newest_snapshot_seq(&dir)?;
        Ok(Durability {
            dir,
            shards,
            wals,
            checkpoints: AtomicU64::new(0),
            last_snapshot: Mutex::new(last),
        })
    }

    fn wal_path(dir: &Path, shard: usize) -> PathBuf {
        dir.join("wal").join(format!("shard-{shard}.wal"))
    }

    fn snap_path(dir: &Path, seq: u64) -> PathBuf {
        dir.join("snap").join(format!("snap-{seq}.dps"))
    }

    /// Sequence numbers of all complete snapshots on disk, ascending.
    fn snapshot_seqs(dir: &Path) -> Result<Vec<u64>, DurabilityError> {
        let snap_dir = dir.join("snap");
        let mut seqs = Vec::new();
        let entries = match fs::read_dir(&snap_dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(seqs),
            Err(e) => {
                return Err(DurabilityError::io(
                    format!("listing {}", snap_dir.display()),
                    &e,
                ))
            }
        };
        for entry in entries {
            let entry = entry
                .map_err(|e| DurabilityError::io(format!("listing {}", snap_dir.display()), &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = name
                .strip_prefix("snap-")
                .and_then(|rest| rest.strip_suffix(".dps"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    fn newest_snapshot_seq(dir: &Path) -> Result<Option<u64>, DurabilityError> {
        Ok(Durability::snapshot_seqs(dir)?.last().copied())
    }

    /// Number of shards this directory is laid out for.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The durable directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one ingest batch to `shard`'s WAL and syncs it. `epoch` is
    /// the shard's epoch *after* the batch was applied.
    ///
    /// Contract: the caller holds `shard`'s write lock, so appends for
    /// one shard are serialized and ordered identically to the in-memory
    /// epoch sequence.
    pub fn log_ingest(
        &self,
        shard: usize,
        epoch: u64,
        queries: &[Query],
    ) -> Result<(), DurabilityError> {
        let record = WalRecord {
            epoch,
            queries: queries.to_vec(),
        };
        let mut wal = self.wals[shard]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        wal.append(&record)
            .map_err(io_err(format!("appending to shard {shard}'s WAL")))
    }

    /// Writes an epoch-consistent snapshot of every shard, then resets
    /// the WALs (their records are now redundant) and prunes older
    /// snapshots. Returns the new snapshot's sequence number.
    ///
    /// Contract: the caller holds **all** shard read locks across this
    /// call, so no append can interleave with the cut or the resets.
    pub fn checkpoint(&self, shards: &[ShardStateRef<'_>]) -> Result<u64, DurabilityError> {
        assert_eq!(
            shards.len(),
            self.shards,
            "checkpoint must cover every shard"
        );
        let mut last = self
            .last_snapshot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let seq = last.map_or(1, |s| s + 1);
        let image = encode_snapshot(shards);
        write_snapshot_file(&Durability::snap_path(&self.dir, seq), &image)?;
        *last = Some(seq);
        // The snapshot is durable; WAL frames at or below its cut are
        // redundant. Resets happen after the rename, so a crash anywhere
        // in this sequence leaves either (old snap + full WAL) or
        // (new snap + possibly-unreset WALs) — both recover correctly,
        // because replay filters records by epoch.
        for (shard, wal) in self.wals.iter().enumerate() {
            let mut wal = wal
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            wal.reset()
                .map_err(io_err(format!("resetting shard {shard}'s WAL")))?;
        }
        for old in Durability::snapshot_seqs(&self.dir)? {
            if old < seq {
                // Best-effort prune; a leftover old snapshot is harmless.
                let _ = fs::remove_file(Durability::snap_path(&self.dir, old));
            }
        }
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(seq)
    }

    /// Loads the newest valid snapshot plus each shard's WAL tail —
    /// everything a server needs to rebuild bit-identical shards.
    ///
    /// Validation: WAL records are filtered to epochs past the snapshot
    /// cut and must chain contiguously (+1 per record) from it; any gap
    /// is [`DurabilityError::EpochGap`], any damaged frame or snapshot
    /// surfaces as its typed error.
    pub fn recover(&self) -> Result<Vec<ShardRecovery>, DurabilityError> {
        let bases: Vec<ShardSnapshot> = match *self
            .last_snapshot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            Some(seq) => {
                let shards = read_snapshot_file(&Durability::snap_path(&self.dir, seq))?;
                if shards.len() != self.shards {
                    return Err(DurabilityError::CorruptSnapshot {
                        path: Durability::snap_path(&self.dir, seq).display().to_string(),
                        detail: format!(
                            "snapshot holds {} shards, manifest declares {}",
                            shards.len(),
                            self.shards
                        ),
                    });
                }
                shards
            }
            None => (0..self.shards)
                .map(|_| ShardSnapshot {
                    epoch: 0,
                    queries: Vec::new(),
                    matrix: DistanceMatrix::new(),
                })
                .collect(),
        };
        let mut out = Vec::with_capacity(self.shards);
        for (shard, base) in bases.into_iter().enumerate() {
            let path = Durability::wal_path(&self.dir, shard);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
                Err(e) => {
                    return Err(DurabilityError::io(
                        format!("reading {}", path.display()),
                        &e,
                    ))
                }
            };
            let replay = read_wal(&bytes, shard)?;
            let tail: Vec<WalRecord> = replay
                .records
                .into_iter()
                .filter(|r| r.epoch > base.epoch)
                .collect();
            let mut expected = base.epoch;
            for r in &tail {
                expected += 1;
                if r.epoch != expected {
                    return Err(DurabilityError::EpochGap {
                        shard,
                        expected,
                        found: r.epoch,
                    });
                }
            }
            out.push(ShardRecovery {
                base,
                tail,
                torn_tail: replay.torn_tail,
            });
        }
        Ok(out)
    }

    /// Current counters.
    pub fn stats(&self) -> DurabilityStats {
        let mut wal_records = 0;
        let mut wal_bytes = 0;
        for wal in &self.wals {
            let wal = wal
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            wal_records += wal.appended();
            wal_bytes += wal.len();
        }
        DurabilityStats {
            wal_records,
            wal_bytes,
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            last_snapshot: *self
                .last_snapshot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_distance::TokenDistance;
    use dpe_sql::parse_query;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dpe-durability-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn queries(range: std::ops::Range<usize>) -> Vec<Query> {
        range
            .map(|i| parse_query(&format!("SELECT c{i} FROM t WHERE k = {i}")).unwrap())
            .collect()
    }

    #[test]
    fn create_log_recover_round_trip() {
        let dir = tmp_dir("round-trip");
        let d = Durability::create(&dir, 2).unwrap();
        d.log_ingest(0, 1, &queries(0..3)).unwrap();
        d.log_ingest(1, 1, &queries(3..5)).unwrap();
        d.log_ingest(0, 2, &queries(5..6)).unwrap();
        drop(d);

        let d = Durability::open(&dir).unwrap();
        assert_eq!(d.shards(), 2);
        let rec = d.recover().unwrap();
        assert_eq!(rec[0].tail.len(), 2);
        assert_eq!(rec[0].tail[1].queries, queries(5..6));
        assert_eq!(rec[0].final_epoch(), 2);
        assert_eq!(rec[1].tail.len(), 1);
        assert_eq!(rec[1].base.epoch, 0);
        assert!(rec[1].base.queries.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_resets_wals_and_filters_replay() {
        let dir = tmp_dir("checkpoint");
        let d = Durability::create(&dir, 1).unwrap();
        let all = queries(0..4);
        d.log_ingest(0, 1, &all[..2]).unwrap();
        let matrix = DistanceMatrix::compute(&all[..2], &TokenDistance).unwrap();
        let seq = d
            .checkpoint(&[ShardStateRef {
                epoch: 1,
                queries: &all[..2],
                matrix: &matrix,
            }])
            .unwrap();
        assert_eq!(seq, 1);
        assert_eq!(d.stats().checkpoints, 1);
        d.log_ingest(0, 2, &all[2..]).unwrap();
        drop(d);

        let d = Durability::open(&dir).unwrap();
        let rec = d.recover().unwrap();
        assert_eq!(rec[0].base.epoch, 1);
        assert_eq!(rec[0].base.queries, all[..2].to_vec());
        assert!(rec[0].base.matrix.identical(&matrix));
        assert_eq!(rec[0].tail.len(), 1);
        assert_eq!(rec[0].tail[0].epoch, 2);
        // A second checkpoint prunes the first snapshot.
        let full = DistanceMatrix::compute(&all, &TokenDistance).unwrap();
        let seq2 = d
            .checkpoint(&[ShardStateRef {
                epoch: 2,
                queries: &all,
                matrix: &full,
            }])
            .unwrap();
        assert_eq!(seq2, 2);
        assert!(!Durability::snap_path(&dir, 1).exists());
        assert!(Durability::snap_path(&dir, 2).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_existing_state() {
        let dir = tmp_dir("refuse");
        let d = Durability::create(&dir, 1).unwrap();
        drop(d);
        assert!(matches!(
            Durability::create(&dir, 1),
            Err(DurabilityError::ExistingState { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_is_validated() {
        let dir = tmp_dir("manifest");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("MANIFEST"), "dpe-durability/v999\nshards 1\n").unwrap();
        assert!(matches!(
            Durability::open(&dir),
            Err(DurabilityError::Manifest(_))
        ));
        fs::write(dir.join("MANIFEST"), "dpe-durability/v1\nshards 0\n").unwrap();
        assert!(Durability::open(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_gap_is_detected() {
        let dir = tmp_dir("gap");
        let d = Durability::create(&dir, 1).unwrap();
        d.log_ingest(0, 1, &queries(0..1)).unwrap();
        d.log_ingest(0, 3, &queries(1..2)).unwrap(); // skips epoch 2
        match d.recover() {
            Err(DurabilityError::EpochGap {
                expected, found, ..
            }) => {
                assert_eq!((expected, found), (2, 3));
            }
            other => panic!("expected EpochGap, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        let d = Durability::create(&dir, 1).unwrap();
        d.log_ingest(0, 1, &queries(0..2)).unwrap();
        d.log_ingest(0, 2, &queries(2..3)).unwrap();
        drop(d);
        // Tear the last frame.
        let path = Durability::wal_path(&dir, 0);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let d = Durability::open(&dir).unwrap();
        let rec = d.recover().unwrap();
        assert_eq!(rec[0].tail.len(), 1, "only the complete record survives");
        // The open truncated the file back to its valid prefix...
        assert!(fs::read(&path).unwrap().len() < bytes.len());
        // ...so appending resumes cleanly at the next epoch.
        d.log_ingest(0, 2, &queries(2..4)).unwrap();
        let rec = d.recover().unwrap();
        assert_eq!(rec[0].tail.len(), 2);
        assert_eq!(rec[0].final_epoch(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_track_bytes_and_records() {
        let dir = tmp_dir("stats");
        let d = Durability::create(&dir, 2).unwrap();
        let before = d.stats();
        assert_eq!(before.wal_records, 0);
        d.log_ingest(0, 1, &queries(0..2)).unwrap();
        let after = d.stats();
        assert_eq!(after.wal_records, 1);
        assert!(after.wal_bytes > before.wal_bytes);
        assert_eq!(after.last_snapshot, None);
        fs::remove_dir_all(&dir).unwrap();
    }
}
