//! Durability for the serving engine: a per-shard write-ahead log plus
//! epoch-consistent snapshots, so a provider process can crash at any
//! instant and recover shards that serve **bit-identical** responses.
//!
//! # Layering
//!
//! ```text
//!              ┌────────────────────────────────────────────┐
//!   ingest ──▶ │ shard (memory): queries + packed matrix    │──▶ serve
//!              │        epoch e  (bumps on every ingest)    │
//!              └──────────────┬─────────────────────────────┘
//!                             │ same write-lock hold
//!                             ▼
//!              wal/shard-i.wal   ← frame per ingest: [len][fnv64][payload]
//!                             │ checkpoint (all shards, one epoch cut)
//!                             ▼
//!              snap/snap-s.dps  ← ciphertext store + packed matrix bits
//! ```
//!
//! The **epoch counter** the server already bumps on every ingest (PR 3/4)
//! doubles as the recovery cursor: each WAL record carries the epoch the
//! shard reached *after* applying that batch, and a snapshot records the
//! epoch of every shard at one consistent cut. Recovery is therefore
//! `load newest valid snapshot → re-apply WAL records with epoch >
//! snapshot epoch → done`; plan caches and metric indexes are derived
//! state and get rebuilt lazily (caches) or eagerly on restore (indexes).
//!
//! # What is on disk
//!
//! Records hold **ciphertext**: the server ingests already-encrypted
//! query ASTs, and the WAL serializes exactly those ASTs with the
//! structural codec in [`codec`] — the log leaks nothing the serving
//! shard did not already hold. Matrices are snapshotted as their packed
//! `f64` cell bits ([`dpe_distance::DistanceMatrix::as_packed`]), which
//! is what makes a restored matrix bit-identical rather than merely
//! approximately equal.
//!
//! # Failure semantics
//!
//! * A **torn tail** (the file ends mid-frame — the classic crash during
//!   an append) is *expected* damage: replay keeps every complete frame
//!   and reports the tail via [`wal::WalReplay::torn_tail`]; reopening
//!   for append truncates the torn bytes.
//! * A **corrupt frame** (checksum mismatch on a *complete* frame, or a
//!   checksum-valid frame that does not decode) is *unexpected* damage
//!   and surfaces as [`DurabilityError::CorruptRecord`] — never as a
//!   silently wrong shard.
//! * A **partial or corrupt snapshot** fails its whole-body checksum and
//!   surfaces as [`DurabilityError::CorruptSnapshot`]; snapshots are
//!   written to a temp file and atomically renamed, so the newest
//!   `snap-*.dps` is complete unless the storage itself corrupted it.
//! * An **epoch gap** (WAL records that do not chain contiguously from
//!   the snapshot epoch) means records were lost out of order and
//!   surfaces as [`DurabilityError::EpochGap`].
//!
//! [`testkit::FailpointFs`] injects the harshest crash model — writes
//! acknowledged to the caller but never reaching the disk past a byte
//! budget — which is what the server's kill-after-every-record sweep
//! drives.

#![forbid(unsafe_code)]

pub mod codec;
pub mod engine;
pub mod snapshot;
pub mod testkit;
pub mod wal;

pub use engine::{Durability, DurabilityStats, ShardRecovery, ShardStateRef};
pub use snapshot::ShardSnapshot;
pub use wal::{WalRecord, WalReplay};

use std::fmt;

/// Typed durability failures — damaged on-disk state is always reported,
/// never turned into a garbage shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurabilityError {
    /// An underlying filesystem operation failed.
    Io {
        /// What the engine was doing (path and operation).
        context: String,
        /// The OS error, stringified (io::Error is not `Clone`/`Eq`).
        error: String,
    },
    /// A complete WAL frame failed its checksum or did not decode.
    CorruptRecord {
        /// Shard whose log is damaged.
        shard: usize,
        /// Byte offset of the damaged frame within the log file.
        offset: u64,
        /// What exactly was wrong.
        detail: String,
    },
    /// A snapshot file was truncated, failed its checksum, or did not
    /// decode.
    CorruptSnapshot {
        /// The snapshot file.
        path: String,
        /// What exactly was wrong.
        detail: String,
    },
    /// WAL records do not chain contiguously from the snapshot epoch.
    EpochGap {
        /// Shard whose chain is broken.
        shard: usize,
        /// Epoch the next record was required to carry.
        expected: u64,
        /// Epoch it actually carried.
        found: u64,
    },
    /// The directory's manifest disagrees with the caller's configuration.
    Manifest(String),
    /// A fresh durable server was pointed at a directory that already
    /// holds state (use recovery instead, or a new directory).
    ExistingState {
        /// The offending directory.
        dir: String,
    },
    /// A structural decode failure outside any checksum's protection
    /// (should not happen for files this crate wrote).
    Codec(String),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io { context, error } => write!(f, "io error {context}: {error}"),
            DurabilityError::CorruptRecord {
                shard,
                offset,
                detail,
            } => write!(
                f,
                "corrupt WAL record (shard {shard}, byte offset {offset}): {detail}"
            ),
            DurabilityError::CorruptSnapshot { path, detail } => {
                write!(f, "corrupt snapshot {path}: {detail}")
            }
            DurabilityError::EpochGap {
                shard,
                expected,
                found,
            } => write!(
                f,
                "epoch gap in shard {shard}'s WAL: expected epoch {expected}, found {found}"
            ),
            DurabilityError::Manifest(why) => write!(f, "manifest mismatch: {why}"),
            DurabilityError::ExistingState { dir } => write!(
                f,
                "directory {dir} already holds durable state; recover from it or pick a fresh one"
            ),
            DurabilityError::Codec(why) => write!(f, "codec error: {why}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl DurabilityError {
    /// Wraps an [`std::io::Error`] with a human context string.
    pub fn io(context: impl Into<String>, error: &std::io::Error) -> DurabilityError {
        DurabilityError::Io {
            context: context.into(),
            error: error.to_string(),
        }
    }
}

/// FNV-1a 64-bit — the frame and snapshot checksum. Not cryptographic
/// (the threat model here is torn writes and bit rot, not forgery; the
/// *contents* are ciphertext already) but fast, dependency-free, and
/// sensitive to every byte.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_reference_vectors() {
        // Canonical FNV-1a 64 vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_sensitive_to_every_byte() {
        let base = b"hello world".to_vec();
        let h = fnv1a64(&base);
        for i in 0..base.len() {
            let mut flipped = base.clone();
            flipped[i] ^= 0x01;
            assert_ne!(fnv1a64(&flipped), h, "flip at byte {i} must change hash");
        }
    }

    #[test]
    fn errors_display_context() {
        let e = DurabilityError::CorruptRecord {
            shard: 3,
            offset: 42,
            detail: "checksum mismatch".into(),
        };
        let s = e.to_string();
        assert!(s.contains("shard 3") && s.contains("42"), "{s}");
    }
}
