//! Epoch-consistent whole-server snapshots.
//!
//! One file per checkpoint (`snap/snap-<seq>.dps`) holding **every**
//! shard's state at a single consistent cut — the server takes all shard
//! read locks before encoding, so no ingest can interleave between two
//! shards' sections. The layout is
//!
//! ```text
//! [magic "DPESNAP1"] [fnv1a64(body): u64 LE] [body]
//!   body := [shard count: u32]
//!           per shard: [epoch: u64] [queries (codec batch)]
//!                      [n: u64] [n(n−1)/2 packed matrix cells, f64 bits LE]
//! ```
//!
//! Matrix cells are written as raw `f64` bit patterns, so a restored
//! [`DistanceMatrix`] is *bit-identical* to the snapshotted one — the
//! property the whole DPE test pyramid leans on. The body checksum sits
//! in the header; any truncation or bit damage anywhere in the body
//! fails the checksum and surfaces as
//! [`DurabilityError::CorruptSnapshot`]. Writes go to `<file>.tmp`
//! first, are synced, then renamed into place, so a crash mid-checkpoint
//! leaves at worst a stale `.tmp` — never a half-written `snap-*.dps`.

use crate::codec::{read_queries, write_queries, Reader, Writer};
use crate::engine::ShardStateRef;
use crate::{fnv1a64, DurabilityError};
use dpe_distance::DistanceMatrix;
use dpe_sql::Query;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// File magic: identifies a snapshot and its format version.
pub const SNAP_MAGIC: [u8; 8] = *b"DPESNAP1";

/// One shard's state as restored from a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// The shard's epoch at the checkpoint cut.
    pub epoch: u64,
    /// The ciphertext query store.
    pub queries: Vec<Query>,
    /// The packed distance matrix, bit-identical to the snapshotted one.
    pub matrix: DistanceMatrix,
}

/// Encodes all shards into a snapshot image.
pub fn encode_snapshot(shards: &[ShardStateRef<'_>]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(shards.len() as u32);
    for s in shards {
        w.u64(s.epoch);
        write_queries(&mut w, s.queries);
        w.u64(s.matrix.len() as u64);
        for &cell in s.matrix.as_packed() {
            w.f64_bits(cell);
        }
    }
    let body = w.into_bytes();
    let mut image = Vec::with_capacity(SNAP_MAGIC.len() + 8 + body.len());
    image.extend_from_slice(&SNAP_MAGIC);
    image.extend_from_slice(&fnv1a64(&body).to_le_bytes());
    image.extend_from_slice(&body);
    image
}

/// Decodes a snapshot image. `path` only labels errors.
pub fn decode_snapshot(bytes: &[u8], path: &str) -> Result<Vec<ShardSnapshot>, DurabilityError> {
    let corrupt = |detail: String| DurabilityError::CorruptSnapshot {
        path: path.to_string(),
        detail,
    };
    if bytes.len() < SNAP_MAGIC.len() + 8 {
        return Err(corrupt(format!(
            "file holds {} bytes, shorter than the {}-byte header",
            bytes.len(),
            SNAP_MAGIC.len() + 8
        )));
    }
    if bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(corrupt("bad snapshot magic".into()));
    }
    let crc = u64::from_le_bytes([
        bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
    ]);
    let body = &bytes[SNAP_MAGIC.len() + 8..];
    if fnv1a64(body) != crc {
        return Err(corrupt(
            "body checksum mismatch (truncated or damaged)".into(),
        ));
    }
    let mut r = Reader::new(body);
    let decode = |e: DurabilityError| corrupt(format!("checksum-valid body failed to decode: {e}"));
    let n_shards = r.seq_len(8, "shard count").map_err(decode)?;
    let mut shards = Vec::with_capacity(n_shards);
    for shard in 0..n_shards {
        let epoch = r.u64("shard epoch").map_err(decode)?;
        let queries = read_queries(&mut r).map_err(decode)?;
        let n = r.u64("matrix size").map_err(decode)? as usize;
        if n != queries.len() {
            return Err(corrupt(format!(
                "shard {shard}: matrix covers {n} items but {} queries were stored",
                queries.len()
            )));
        }
        let cells = n * n.saturating_sub(1) / 2;
        let mut data = Vec::with_capacity(cells);
        for _ in 0..cells {
            data.push(r.f64_bits("matrix cell").map_err(decode)?);
        }
        let matrix = DistanceMatrix::from_packed(n, data)
            .ok_or_else(|| corrupt(format!("shard {shard}: inconsistent packed cell count")))?;
        shards.push(ShardSnapshot {
            epoch,
            queries,
            matrix,
        });
    }
    r.finish().map_err(decode)?;
    Ok(shards)
}

/// Writes a snapshot image atomically: `<path>.tmp` + fsync + rename.
pub fn write_snapshot_file(path: &Path, image: &[u8]) -> Result<(), DurabilityError> {
    let tmp = path.with_extension("dps.tmp");
    let ctx = |what: &str| format!("{what} {}", tmp.display());
    let mut f = fs::File::create(&tmp).map_err(|e| DurabilityError::io(ctx("creating"), &e))?;
    f.write_all(image)
        .map_err(|e| DurabilityError::io(ctx("writing"), &e))?;
    f.sync_all()
        .map_err(|e| DurabilityError::io(ctx("syncing"), &e))?;
    drop(f);
    fs::rename(&tmp, path)
        .map_err(|e| DurabilityError::io(format!("renaming {} into place", tmp.display()), &e))?;
    Ok(())
}

/// Reads and decodes a snapshot file.
pub fn read_snapshot_file(path: &Path) -> Result<Vec<ShardSnapshot>, DurabilityError> {
    let bytes = fs::read(path)
        .map_err(|e| DurabilityError::io(format!("reading snapshot {}", path.display()), &e))?;
    decode_snapshot(&bytes, &path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_sql::parse_query;

    fn state(epoch: u64, n: usize) -> (Vec<Query>, DistanceMatrix) {
        let queries: Vec<Query> = (0..n)
            .map(|i| parse_query(&format!("SELECT c{i} FROM t WHERE k = {i}")).unwrap())
            .collect();
        // Awkward float bit patterns on purpose: subnormals, -0.0, huge.
        let matrix = DistanceMatrix::from_fn(n, |i, j| match (i + j) % 4 {
            0 => f64::MIN_POSITIVE / 2.0,
            1 => -0.0,
            2 => 1e300,
            _ => (i as f64) / (j as f64 + 0.1),
        });
        let _ = epoch;
        (queries, matrix)
    }

    fn image_of(specs: &[(u64, usize)]) -> (Vec<u8>, Vec<ShardSnapshot>) {
        let owned: Vec<(u64, Vec<Query>, DistanceMatrix)> = specs
            .iter()
            .map(|&(e, n)| {
                let (q, m) = state(e, n);
                (e, q, m)
            })
            .collect();
        let refs: Vec<ShardStateRef<'_>> = owned
            .iter()
            .map(|(e, q, m)| ShardStateRef {
                epoch: *e,
                queries: q,
                matrix: m,
            })
            .collect();
        let image = encode_snapshot(&refs);
        let expect = owned
            .into_iter()
            .map(|(epoch, queries, matrix)| ShardSnapshot {
                epoch,
                queries,
                matrix,
            })
            .collect();
        (image, expect)
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let (image, expect) = image_of(&[(5, 4), (0, 0), (12, 7)]);
        let shards = decode_snapshot(&image, "test").unwrap();
        assert_eq!(shards.len(), 3);
        for (got, want) in shards.iter().zip(&expect) {
            assert_eq!(got.epoch, want.epoch);
            assert_eq!(got.queries, want.queries);
            assert!(got.matrix.identical(&want.matrix), "bit-identical matrices");
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let (image, _) = image_of(&[(3, 3)]);
        for cut in 0..image.len() {
            let err = decode_snapshot(&image[..cut], "t").unwrap_err();
            assert!(
                matches!(err, DurabilityError::CorruptSnapshot { .. }),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn every_byte_flip_is_a_typed_error() {
        let (image, _) = image_of(&[(2, 2), (9, 1)]);
        for i in 0..image.len() {
            let mut damaged = image.clone();
            damaged[i] ^= 0x10;
            let err = decode_snapshot(&damaged, "t").unwrap_err();
            assert!(
                matches!(err, DurabilityError::CorruptSnapshot { .. }),
                "flip {i}: {err:?}"
            );
        }
    }

    #[test]
    fn file_round_trip_is_atomic_rename() {
        let dir = std::env::temp_dir().join(format!("dpe-snap-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap-1.dps");
        let (image, _) = image_of(&[(1, 2)]);
        write_snapshot_file(&path, &image).unwrap();
        assert!(!path.with_extension("dps.tmp").exists(), "tmp renamed away");
        assert_eq!(read_snapshot_file(&path).unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
