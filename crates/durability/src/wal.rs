//! The per-shard write-ahead log.
//!
//! One file per shard (`wal/shard-<i>.wal`): an 8-byte magic header
//! followed by self-delimiting frames
//!
//! ```text
//! [payload len: u32 LE] [fnv1a64(payload): u64 LE] [payload]
//! ```
//!
//! where the payload is a record tag plus the ingest batch's queries and
//! the epoch the shard reached after applying the batch. The frame
//! geometry gives the two recovery guarantees the differential suite
//! pins:
//!
//! * **Torn tails truncate.** If the file ends before a frame's declared
//!   length (the only damage a crash during `append` can cause on a
//!   POSIX file), [`read_wal`] keeps every complete frame and reports
//!   the torn byte count — recovery proceeds with the durable prefix.
//! * **Corruption is typed.** A *complete* frame whose checksum fails,
//!   or a checksum-valid frame that does not decode, is damage a crash
//!   cannot produce; it surfaces as
//!   [`DurabilityError::CorruptRecord`] with the byte offset, never as a
//!   silently different replay.
//!
//! Appends go through the [`WalSink`] trait so the crash-recovery sweep
//! can substitute [`crate::testkit::FailpointFs`] sinks that drop
//! acknowledged bytes past a budget — the harshest crash model.

use crate::codec::{read_queries, write_queries, Reader, Writer};
use crate::{fnv1a64, DurabilityError};
use dpe_sql::Query;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;

/// File magic: identifies a shard WAL and its format version.
pub const WAL_MAGIC: [u8; 8] = *b"DPEWAL1\n";

/// Frame header bytes ahead of the payload: u32 length + u64 checksum.
pub const FRAME_HEADER: usize = 12;

/// Payload tag for an ingest-batch record.
const TAG_INGEST: u8 = 1;

/// One durable log record: an ingest batch plus the epoch the shard
/// reached after applying it (the recovery cursor).
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Shard epoch *after* this batch was applied.
    pub epoch: u64,
    /// The ingested (ciphertext) queries; empty batches are logged too,
    /// because a direct `ingest` of an empty batch still bumps the epoch.
    pub queries: Vec<Query>,
}

impl WalRecord {
    /// The record's canonical payload bytes.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(TAG_INGEST);
        w.u64(self.epoch);
        write_queries(&mut w, &self.queries);
        w.into_bytes()
    }

    /// Decodes a payload produced by [`WalRecord::encode_payload`].
    pub fn decode_payload(bytes: &[u8]) -> Result<WalRecord, DurabilityError> {
        let mut r = Reader::new(bytes);
        match r.u8("record tag")? {
            TAG_INGEST => {}
            t => return Err(DurabilityError::Codec(format!("unknown record tag {t}"))),
        }
        let epoch = r.u64("record epoch")?;
        let queries = read_queries(&mut r)?;
        r.finish()?;
        Ok(WalRecord { epoch, queries })
    }

    /// The full frame (header + payload) this record appends.
    pub fn encode_frame(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }
}

/// Result of replaying one shard's log.
#[derive(Debug, Clone, PartialEq)]
pub struct WalReplay {
    /// Every complete, checksum-valid record, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (magic + complete frames) — what
    /// reopening for append truncates to.
    pub valid_len: u64,
    /// `true` when bytes past `valid_len` were discarded as a torn tail.
    pub torn_tail: bool,
}

/// Replays a shard WAL image. `shard` only labels errors.
///
/// An empty image is a fresh log. A header shorter or different from
/// [`WAL_MAGIC`] is corruption ([`DurabilityError::CorruptRecord`] at
/// offset 0): the 8-byte magic is written and synced as the log's very
/// first append, so only a torn *first* write can produce a short
/// header, and rejecting it loudly beats silently emptying a file we
/// did not write.
pub fn read_wal(bytes: &[u8], shard: usize) -> Result<WalReplay, DurabilityError> {
    if bytes.is_empty() {
        return Ok(WalReplay {
            records: Vec::new(),
            valid_len: 0,
            torn_tail: false,
        });
    }
    if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(DurabilityError::CorruptRecord {
            shard,
            offset: 0,
            detail: "bad or missing WAL magic".into(),
        });
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok(WalReplay {
                records,
                valid_len: pos as u64,
                torn_tail: false,
            });
        }
        if remaining < FRAME_HEADER {
            return Ok(WalReplay {
                records,
                valid_len: pos as u64,
                torn_tail: true,
            });
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc = u64::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
            bytes[pos + 8],
            bytes[pos + 9],
            bytes[pos + 10],
            bytes[pos + 11],
        ]);
        if remaining - FRAME_HEADER < len {
            // The frame was cut off mid-payload: a torn append.
            return Ok(WalReplay {
                records,
                valid_len: pos as u64,
                torn_tail: true,
            });
        }
        let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
        if fnv1a64(payload) != crc {
            return Err(DurabilityError::CorruptRecord {
                shard,
                offset: pos as u64,
                detail: "frame checksum mismatch".into(),
            });
        }
        let record =
            WalRecord::decode_payload(payload).map_err(|e| DurabilityError::CorruptRecord {
                shard,
                offset: pos as u64,
                detail: format!("checksum-valid frame failed to decode: {e}"),
            })?;
        records.push(record);
        pos += FRAME_HEADER + len;
    }
}

/// Destination of WAL bytes. The production implementation is
/// [`FileSink`]; [`crate::testkit::FailpointFs`] substitutes
/// budget-limited sinks for crash injection.
pub trait WalSink: Send {
    /// Appends bytes at the end of the log.
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()>;
    /// Makes previously appended bytes durable.
    fn sync(&mut self) -> std::io::Result<()>;
    /// Resets the log to exactly `keep` bytes (used after a checkpoint,
    /// with `keep` = the magic header length).
    fn truncate_to(&mut self, keep: u64) -> std::io::Result<()>;
}

/// The production sink: an append-mode file with `sync_data` durability.
#[derive(Debug)]
pub struct FileSink {
    file: File,
}

impl FileSink {
    /// Opens (creating if needed) the file in append mode.
    pub fn open(path: &Path) -> std::io::Result<FileSink> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FileSink { file })
    }
}

impl WalSink for FileSink {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }

    fn truncate_to(&mut self, keep: u64) -> std::io::Result<()> {
        self.file.set_len(keep)?;
        self.file.sync_data()
    }
}

/// Append half of one shard's WAL: frames records onto a sink and tracks
/// byte/record counters for [`crate::DurabilityStats`].
pub struct WalWriter {
    sink: Box<dyn WalSink>,
    /// Bytes the writer believes are in the log (header + frames).
    len: u64,
    /// Records appended since open.
    appended: u64,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("len", &self.len)
            .field("appended", &self.appended)
            .finish_non_exhaustive()
    }
}

impl WalWriter {
    /// Wraps a sink positioned at the end of a valid log of `existing_len`
    /// bytes. When `existing_len` is 0 the magic header is written (and
    /// synced) first.
    pub fn new(mut sink: Box<dyn WalSink>, existing_len: u64) -> std::io::Result<WalWriter> {
        let len = if existing_len == 0 {
            sink.append(&WAL_MAGIC)?;
            sink.sync()?;
            WAL_MAGIC.len() as u64
        } else {
            existing_len
        };
        Ok(WalWriter {
            sink,
            len,
            appended: 0,
        })
    }

    /// Appends one record frame and syncs it.
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<()> {
        let frame = record.encode_frame();
        self.sink.append(&frame)?;
        self.sink.sync()?;
        self.len += frame.len() as u64;
        self.appended += 1;
        Ok(())
    }

    /// Drops every frame (after a checkpoint made them redundant),
    /// keeping only the magic header.
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.sink.truncate_to(WAL_MAGIC.len() as u64)?;
        self.len = WAL_MAGIC.len() as u64;
        Ok(())
    }

    /// Bytes in the log as the writer sees them.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the log holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_MAGIC.len() as u64
    }

    /// Records appended through this writer since it was opened.
    pub fn appended(&self) -> u64 {
        self.appended
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_sql::parse_query;

    fn record(epoch: u64, n: usize) -> WalRecord {
        WalRecord {
            epoch,
            queries: (0..n)
                .map(|i| parse_query(&format!("SELECT c{i} FROM t WHERE k = {}", epoch)).unwrap())
                .collect(),
        }
    }

    fn log_of(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = WAL_MAGIC.to_vec();
        for r in records {
            bytes.extend_from_slice(&r.encode_frame());
        }
        bytes
    }

    #[test]
    fn frame_round_trip() {
        let records = vec![record(1, 3), record(2, 0), record(3, 1)];
        let replay = read_wal(&log_of(&records), 0).unwrap();
        assert_eq!(replay.records, records);
        assert!(!replay.torn_tail);
        assert_eq!(replay.valid_len, log_of(&records).len() as u64);
    }

    #[test]
    fn empty_and_header_only_logs_are_fresh() {
        assert_eq!(read_wal(&[], 0).unwrap().records, Vec::new());
        let replay = read_wal(&WAL_MAGIC, 0).unwrap();
        assert!(replay.records.is_empty() && !replay.torn_tail);
    }

    #[test]
    fn every_torn_prefix_recovers_the_complete_frames() {
        let records = vec![record(1, 2), record(2, 1), record(3, 3)];
        let bytes = log_of(&records);
        // Frame boundaries: magic, then cumulative frame ends.
        let mut boundaries = vec![WAL_MAGIC.len()];
        for r in &records {
            boundaries.push(boundaries.last().unwrap() + r.encode_frame().len());
        }
        for cut in WAL_MAGIC.len()..=bytes.len() {
            let replay = read_wal(&bytes[..cut], 0).unwrap();
            let expect = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(replay.records.len(), expect, "cut {cut}");
            assert_eq!(replay.records[..], records[..expect], "cut {cut}");
            assert_eq!(replay.valid_len as usize, boundaries[expect], "cut {cut}");
            assert_eq!(replay.torn_tail, !boundaries.contains(&cut), "cut {cut}");
        }
    }

    #[test]
    fn bad_magic_is_corruption_not_emptiness() {
        let mut bytes = log_of(&[record(1, 1)]);
        bytes[2] ^= 0xFF;
        assert!(matches!(
            read_wal(&bytes, 7),
            Err(DurabilityError::CorruptRecord {
                shard: 7,
                offset: 0,
                ..
            })
        ));
        // A too-short non-empty header is also corruption.
        assert!(read_wal(&WAL_MAGIC[..3], 0).is_err());
    }

    #[test]
    fn checksum_mismatch_on_complete_frame_is_typed() {
        let records = vec![record(1, 1), record(2, 2)];
        let bytes = log_of(&records);
        let second_frame_at = WAL_MAGIC.len() + records[0].encode_frame().len();
        // Flip a payload byte of the *second* frame: the first must still
        // replay, the damage must be located at the second frame's offset.
        let mut corrupted = bytes.clone();
        let idx = second_frame_at + FRAME_HEADER + 2;
        corrupted[idx] ^= 0x40;
        match read_wal(&corrupted, 0) {
            Err(DurabilityError::CorruptRecord { offset, .. }) => {
                assert_eq!(offset as usize, second_frame_at);
            }
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
    }

    #[test]
    fn writer_tracks_length_and_reset() {
        struct MemSink(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl WalSink for MemSink {
            fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
                self.0.lock().unwrap().extend_from_slice(bytes);
                Ok(())
            }
            fn sync(&mut self) -> std::io::Result<()> {
                Ok(())
            }
            fn truncate_to(&mut self, keep: u64) -> std::io::Result<()> {
                self.0.lock().unwrap().truncate(keep as usize);
                Ok(())
            }
        }
        let buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut w = WalWriter::new(Box::new(MemSink(buf.clone())), 0).unwrap();
        assert!(w.is_empty());
        w.append(&record(1, 2)).unwrap();
        w.append(&record(2, 1)).unwrap();
        assert_eq!(w.appended(), 2);
        assert_eq!(w.len() as usize, buf.lock().unwrap().len());
        let replay = read_wal(&buf.lock().unwrap(), 0).unwrap();
        assert_eq!(replay.records.len(), 2);
        w.reset().unwrap();
        assert!(w.is_empty());
        assert_eq!(buf.lock().unwrap().len(), WAL_MAGIC.len());
    }
}
