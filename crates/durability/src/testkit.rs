//! Fault injection for crash-recovery sweeps.
//!
//! [`FailpointFs`] models the harshest crash: the process *believes*
//! every append succeeded (no error surfaces to the ingest path), but
//! bytes past a shared budget never reach the disk — exactly what a
//! power cut after the page cache acknowledged a write looks like. A
//! sweep then runs the same workload once per budget value and asserts
//! the recovered server matches an oracle that only saw the durable
//! prefix.

use crate::engine::SinkFactory;
use crate::wal::{FileSink, WalSink};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A byte budget shared by every sink the factory opens: the first
/// `budget` bytes of appends (across all shards, in arrival order) reach
/// the real file; everything after is acknowledged and dropped.
#[derive(Debug)]
pub struct FailpointFs {
    budget: AtomicU64,
}

impl FailpointFs {
    /// A factory whose sinks persist exactly `budget` appended bytes.
    pub fn new(budget: u64) -> Arc<FailpointFs> {
        Arc::new(FailpointFs {
            budget: AtomicU64::new(budget),
        })
    }

    /// Bytes of budget not yet consumed.
    pub fn remaining(&self) -> u64 {
        self.budget.load(Ordering::SeqCst)
    }

    /// Takes up to `want` bytes from the budget, returning how many may
    /// still be persisted.
    fn take(&self, want: u64) -> u64 {
        let mut cur = self.budget.load(Ordering::SeqCst);
        loop {
            let granted = cur.min(want);
            match self.budget.compare_exchange(
                cur,
                cur - granted,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return granted,
                Err(actual) => cur = actual,
            }
        }
    }
}

impl SinkFactory for Arc<FailpointFs> {
    fn open_wal(&self, _shard: usize, path: &Path) -> std::io::Result<Box<dyn WalSink>> {
        Ok(Box::new(FailpointSink {
            inner: FileSink::open(path)?,
            fs: Arc::clone(self),
        }))
    }
}

/// A sink that silently drops acknowledged bytes once the shared budget
/// is exhausted.
struct FailpointSink {
    inner: FileSink,
    fs: Arc<FailpointFs>,
}

impl WalSink for FailpointSink {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let granted = self.fs.take(bytes.len() as u64) as usize;
        if granted > 0 {
            self.inner.append(&bytes[..granted])?;
        }
        // Acknowledge the whole write — the caller must not find out.
        Ok(())
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.inner.sync()
    }

    fn truncate_to(&mut self, keep: u64) -> std::io::Result<()> {
        self.inner.truncate_to(keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Durability;
    use crate::wal::WAL_MAGIC;
    use dpe_sql::{parse_query, Query};
    use std::fs;

    fn queries(n: usize) -> Vec<Query> {
        (0..n)
            .map(|i| parse_query(&format!("SELECT c{i} FROM t")).unwrap())
            .collect()
    }

    #[test]
    fn budget_cuts_the_log_at_an_arbitrary_byte() {
        let dir = std::env::temp_dir().join(format!("dpe-failpoint-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        // Unlimited run first: learn the full log length.
        let fs_ok = FailpointFs::new(u64::MAX);
        let d = Durability::create_with(&dir, 1, &fs_ok).unwrap();
        d.log_ingest(0, 1, &queries(2)).unwrap();
        d.log_ingest(0, 2, &queries(1)).unwrap();
        let full = d.stats().wal_bytes;
        drop(d);
        let _ = fs::remove_dir_all(&dir);

        // Budgeted run: cut 3 bytes short — the caller still sees Ok.
        let fp = FailpointFs::new(full - 3);
        let d = Durability::create_with(&dir, 1, &fp).unwrap();
        d.log_ingest(0, 1, &queries(2)).unwrap();
        d.log_ingest(0, 2, &queries(1)).unwrap();
        assert_eq!(fp.remaining(), 0);
        drop(d);

        let on_disk = fs::read(dir.join("wal").join("shard-0.wal")).unwrap();
        assert_eq!(on_disk.len() as u64, full - 3, "bytes past the budget lost");

        // Recovery sees a torn tail: exactly one record survives.
        let d = Durability::open(&dir).unwrap();
        let rec = d.recover().unwrap();
        assert_eq!(rec[0].tail.len(), 1);
        assert_eq!(rec[0].final_epoch(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_budget_loses_everything_including_the_header() {
        let dir = std::env::temp_dir().join(format!("dpe-failpoint0-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let fp = FailpointFs::new(0);
        let d = Durability::create_with(&dir, 1, &fp).unwrap();
        d.log_ingest(0, 1, &queries(1)).unwrap();
        drop(d);
        // Nothing reached the file — an empty WAL is a fresh log.
        let on_disk = fs::read(dir.join("wal").join("shard-0.wal")).unwrap();
        assert!(on_disk.is_empty());
        let d = Durability::open(&dir).unwrap();
        assert!(d.recover().unwrap()[0].tail.is_empty());
        drop(d);

        // A budget that tears the magic itself is corruption — recovery
        // refuses rather than serving garbage.
        let dir2 = std::env::temp_dir().join(format!("dpe-failpoint0b-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir2);
        let fp = FailpointFs::new(WAL_MAGIC.len() as u64 - 2);
        let d = Durability::create_with(&dir2, 1, &fp).unwrap();
        drop(d);
        assert!(Durability::open(&dir2).is_err());
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&dir2).unwrap();
    }
}
