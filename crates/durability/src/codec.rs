//! Structural binary codec for [`dpe_sql::Query`] ASTs.
//!
//! WAL records and snapshots must serialize *exactly* the queries a shard
//! holds — which are routinely **ciphertext** ASTs whose identifiers are
//! DET/token encryptions (hex blobs, not valid SQL identifiers). Printing
//! to SQL text and re-parsing would round-trip only parser-friendly
//! names, so the codec walks the AST structurally instead: one tag byte
//! per enum variant, little-endian fixed-width integers, and
//! length-prefixed UTF-8 for every string. The encoding is canonical
//! (each AST has exactly one byte string), which is what lets frame
//! checksums cover semantic content.
//!
//! Decoding is fully defensive: every length is bounds-checked against
//! the remaining input and every tag must be a known variant, so a
//! corrupted buffer yields [`DurabilityError::Codec`] — never a panic,
//! never a silently different query.

use crate::DurabilityError;
use dpe_sql::{
    AggArg, AggFunc, ColumnRef, CompareOp, Expr, Join, Literal, OrderItem, Query, SelectItem,
    TableRef,
};

/// Serialization surface: primitives append to a byte vector.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw bit pattern — the bit-identity
    /// guarantee rides on never round-tripping distances through text.
    pub fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Deserialization surface: a cursor over a byte slice with typed,
/// bounds-checked reads.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `Ok` iff every byte was consumed — trailing garbage is corruption.
    pub fn finish(self) -> Result<(), DurabilityError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DurabilityError::Codec(format!(
                "{} trailing bytes after a complete value",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DurabilityError> {
        if self.remaining() < n {
            return Err(DurabilityError::Codec(format!(
                "truncated input reading {what}: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, DurabilityError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self, what: &str) -> Result<u32, DurabilityError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self, what: &str) -> Result<u64, DurabilityError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian i64.
    pub fn i64(&mut self, what: &str) -> Result<i64, DurabilityError> {
        Ok(self.u64(what)? as i64)
    }

    /// Reads an `f64` stored as raw bits.
    pub fn f64_bits(&mut self, what: &str) -> Result<f64, DurabilityError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a length-prefixed string.
    pub fn str(&mut self, what: &str) -> Result<String, DurabilityError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DurabilityError::Codec(format!("non-UTF-8 bytes in {what}")))
    }

    /// Reads a collection length, rejecting lengths that could not
    /// possibly fit in the remaining input (`min_elem_size` bytes per
    /// element) — a corrupted length must fail fast, not OOM.
    pub fn seq_len(&mut self, min_elem_size: usize, what: &str) -> Result<usize, DurabilityError> {
        let len = self.u32(what)? as usize;
        if len.saturating_mul(min_elem_size.max(1)) > self.remaining() {
            return Err(DurabilityError::Codec(format!(
                "implausible length {len} for {what}: only {} bytes remain",
                self.remaining()
            )));
        }
        Ok(len)
    }
}

fn bad_tag(what: &str, tag: u8) -> DurabilityError {
    DurabilityError::Codec(format!("unknown {what} tag {tag}"))
}

fn write_literal(w: &mut Writer, lit: &Literal) {
    match lit {
        Literal::Int(v) => {
            w.u8(0);
            w.i64(*v);
        }
        Literal::Str(s) => {
            w.u8(1);
            w.str(s);
        }
        Literal::Null => w.u8(2),
    }
}

fn read_literal(r: &mut Reader<'_>) -> Result<Literal, DurabilityError> {
    match r.u8("literal tag")? {
        0 => Ok(Literal::Int(r.i64("int literal")?)),
        1 => Ok(Literal::Str(r.str("str literal")?)),
        2 => Ok(Literal::Null),
        t => Err(bad_tag("literal", t)),
    }
}

fn write_column(w: &mut Writer, col: &ColumnRef) {
    match &col.table {
        Some(t) => {
            w.u8(1);
            w.str(t);
        }
        None => w.u8(0),
    }
    w.str(&col.column);
}

fn read_column(r: &mut Reader<'_>) -> Result<ColumnRef, DurabilityError> {
    let table = match r.u8("column qualifier flag")? {
        0 => None,
        1 => Some(r.str("column qualifier")?),
        t => return Err(bad_tag("column qualifier flag", t)),
    };
    Ok(ColumnRef {
        table,
        column: r.str("column name")?,
    })
}

fn write_compare_op(w: &mut Writer, op: CompareOp) {
    w.u8(match op {
        CompareOp::Eq => 0,
        CompareOp::Ne => 1,
        CompareOp::Lt => 2,
        CompareOp::Le => 3,
        CompareOp::Gt => 4,
        CompareOp::Ge => 5,
    });
}

fn read_compare_op(r: &mut Reader<'_>) -> Result<CompareOp, DurabilityError> {
    Ok(match r.u8("compare op")? {
        0 => CompareOp::Eq,
        1 => CompareOp::Ne,
        2 => CompareOp::Lt,
        3 => CompareOp::Le,
        4 => CompareOp::Gt,
        5 => CompareOp::Ge,
        t => return Err(bad_tag("compare op", t)),
    })
}

fn write_expr(w: &mut Writer, expr: &Expr) {
    match expr {
        Expr::Comparison { col, op, value } => {
            w.u8(0);
            write_column(w, col);
            write_compare_op(w, *op);
            write_literal(w, value);
        }
        Expr::ColumnEq { left, right } => {
            w.u8(1);
            write_column(w, left);
            write_column(w, right);
        }
        Expr::Between { col, low, high } => {
            w.u8(2);
            write_column(w, col);
            write_literal(w, low);
            write_literal(w, high);
        }
        Expr::InList { col, list } => {
            w.u8(3);
            write_column(w, col);
            w.u32(list.len() as u32);
            for lit in list {
                write_literal(w, lit);
            }
        }
        Expr::IsNull { col, negated } => {
            w.u8(4);
            write_column(w, col);
            w.u8(u8::from(*negated));
        }
        Expr::And(a, b) => {
            w.u8(5);
            write_expr(w, a);
            write_expr(w, b);
        }
        Expr::Or(a, b) => {
            w.u8(6);
            write_expr(w, a);
            write_expr(w, b);
        }
        Expr::Not(inner) => {
            w.u8(7);
            write_expr(w, inner);
        }
    }
}

fn read_expr(r: &mut Reader<'_>, depth: usize) -> Result<Expr, DurabilityError> {
    // Depth cap: a corrupted buffer must not recurse the stack away.
    if depth > 512 {
        return Err(DurabilityError::Codec(
            "expression nesting exceeds the codec's depth cap".into(),
        ));
    }
    Ok(match r.u8("expr tag")? {
        0 => Expr::Comparison {
            col: read_column(r)?,
            op: read_compare_op(r)?,
            value: read_literal(r)?,
        },
        1 => Expr::ColumnEq {
            left: read_column(r)?,
            right: read_column(r)?,
        },
        2 => Expr::Between {
            col: read_column(r)?,
            low: read_literal(r)?,
            high: read_literal(r)?,
        },
        3 => {
            let col = read_column(r)?;
            let len = r.seq_len(1, "IN list")?;
            let mut list = Vec::with_capacity(len);
            for _ in 0..len {
                list.push(read_literal(r)?);
            }
            Expr::InList { col, list }
        }
        4 => {
            let col = read_column(r)?;
            let negated = match r.u8("IS NULL negation flag")? {
                0 => false,
                1 => true,
                t => return Err(bad_tag("IS NULL negation flag", t)),
            };
            Expr::IsNull { col, negated }
        }
        5 => {
            let a = read_expr(r, depth + 1)?;
            let b = read_expr(r, depth + 1)?;
            Expr::And(Box::new(a), Box::new(b))
        }
        6 => {
            let a = read_expr(r, depth + 1)?;
            let b = read_expr(r, depth + 1)?;
            Expr::Or(Box::new(a), Box::new(b))
        }
        7 => Expr::Not(Box::new(read_expr(r, depth + 1)?)),
        t => return Err(bad_tag("expr", t)),
    })
}

fn write_select_item(w: &mut Writer, item: &SelectItem) {
    match item {
        SelectItem::Wildcard => w.u8(0),
        SelectItem::Column(col) => {
            w.u8(1);
            write_column(w, col);
        }
        SelectItem::Aggregate { func, arg } => {
            w.u8(2);
            w.u8(match func {
                AggFunc::Count => 0,
                AggFunc::Sum => 1,
                AggFunc::Avg => 2,
                AggFunc::Min => 3,
                AggFunc::Max => 4,
            });
            match arg {
                AggArg::Star => w.u8(0),
                AggArg::Column(col) => {
                    w.u8(1);
                    write_column(w, col);
                }
            }
        }
    }
}

fn read_select_item(r: &mut Reader<'_>) -> Result<SelectItem, DurabilityError> {
    Ok(match r.u8("select item tag")? {
        0 => SelectItem::Wildcard,
        1 => SelectItem::Column(read_column(r)?),
        2 => {
            let func = match r.u8("aggregate func")? {
                0 => AggFunc::Count,
                1 => AggFunc::Sum,
                2 => AggFunc::Avg,
                3 => AggFunc::Min,
                4 => AggFunc::Max,
                t => return Err(bad_tag("aggregate func", t)),
            };
            let arg = match r.u8("aggregate arg tag")? {
                0 => AggArg::Star,
                1 => AggArg::Column(read_column(r)?),
                t => return Err(bad_tag("aggregate arg", t)),
            };
            SelectItem::Aggregate { func, arg }
        }
        t => return Err(bad_tag("select item", t)),
    })
}

/// Appends one query's canonical encoding to `w`.
pub fn write_query(w: &mut Writer, q: &Query) {
    w.u8(u8::from(q.distinct));
    w.u32(q.select.len() as u32);
    for item in &q.select {
        write_select_item(w, item);
    }
    w.str(&q.from.name);
    w.u32(q.joins.len() as u32);
    for j in &q.joins {
        w.str(&j.table.name);
        write_column(w, &j.left);
        write_column(w, &j.right);
    }
    match &q.where_clause {
        Some(e) => {
            w.u8(1);
            write_expr(w, e);
        }
        None => w.u8(0),
    }
    w.u32(q.group_by.len() as u32);
    for col in &q.group_by {
        write_column(w, col);
    }
    w.u32(q.order_by.len() as u32);
    for o in &q.order_by {
        write_column(w, &o.col);
        w.u8(u8::from(o.desc));
    }
    match q.limit {
        Some(n) => {
            w.u8(1);
            w.u64(n);
        }
        None => w.u8(0),
    }
}

/// Reads one query from the cursor (inverse of [`write_query`]).
pub fn read_query(r: &mut Reader<'_>) -> Result<Query, DurabilityError> {
    let distinct = match r.u8("distinct flag")? {
        0 => false,
        1 => true,
        t => return Err(bad_tag("distinct flag", t)),
    };
    let n_select = r.seq_len(1, "select list")?;
    let mut select = Vec::with_capacity(n_select);
    for _ in 0..n_select {
        select.push(read_select_item(r)?);
    }
    let from = TableRef::new(r.str("from table")?);
    let n_joins = r.seq_len(1, "join list")?;
    let mut joins = Vec::with_capacity(n_joins);
    for _ in 0..n_joins {
        joins.push(Join {
            table: TableRef::new(r.str("join table")?),
            left: read_column(r)?,
            right: read_column(r)?,
        });
    }
    let where_clause = match r.u8("where flag")? {
        0 => None,
        1 => Some(read_expr(r, 0)?),
        t => return Err(bad_tag("where flag", t)),
    };
    let n_group = r.seq_len(1, "group by list")?;
    let mut group_by = Vec::with_capacity(n_group);
    for _ in 0..n_group {
        group_by.push(read_column(r)?);
    }
    let n_order = r.seq_len(1, "order by list")?;
    let mut order_by = Vec::with_capacity(n_order);
    for _ in 0..n_order {
        let col = read_column(r)?;
        let desc = match r.u8("order desc flag")? {
            0 => false,
            1 => true,
            t => return Err(bad_tag("order desc flag", t)),
        };
        order_by.push(OrderItem { col, desc });
    }
    let limit = match r.u8("limit flag")? {
        0 => None,
        1 => Some(r.u64("limit")?),
        t => return Err(bad_tag("limit flag", t)),
    };
    Ok(Query {
        distinct,
        select,
        from,
        joins,
        where_clause,
        group_by,
        order_by,
        limit,
    })
}

/// Encodes a batch of queries (length prefix + each query).
pub fn write_queries(w: &mut Writer, queries: &[Query]) {
    w.u32(queries.len() as u32);
    for q in queries {
        write_query(w, q);
    }
}

/// Reads a batch of queries (inverse of [`write_queries`]).
pub fn read_queries(r: &mut Reader<'_>) -> Result<Vec<Query>, DurabilityError> {
    let n = r.seq_len(1, "query batch")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_query(r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_sql::parse_query;

    fn round_trip(q: &Query) -> Query {
        let mut w = Writer::new();
        write_query(&mut w, q);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = read_query(&mut r).expect("decode");
        r.finish().expect("no trailing bytes");
        back
    }

    #[test]
    fn round_trips_every_ast_construct() {
        let sources = [
            "SELECT ra FROM photoobj",
            "SELECT DISTINCT ra, dec FROM photoobj WHERE objid = 42",
            "SELECT * FROM specobj WHERE z BETWEEN 1 AND 5 AND class = 'QSO'",
            "SELECT COUNT(*) FROM photoobj GROUP BY run ORDER BY run DESC LIMIT 10",
            "SELECT AVG(p.ra) FROM photoobj JOIN specobj ON p.objid = s.objid \
             WHERE p.flags IS NOT NULL OR s.z IN (1, 2, 3)",
            "SELECT MIN(ra), MAX(dec) FROM t WHERE NOT (a = 1) AND b != 'x''y'",
        ];
        for src in sources {
            let q = parse_query(src).expect(src);
            assert_eq!(round_trip(&q), q, "{src}");
        }
    }

    #[test]
    fn round_trips_ciphertext_identifiers_sql_text_cannot() {
        // Identifier spellings a DET scheme produces are not valid SQL
        // identifiers — the structural codec must not care.
        let mut q = parse_query("SELECT a FROM t WHERE c = 'v'").unwrap();
        q.from.name = "9f?— not an identifier \u{1F512}".into();
        match &mut q.select[0] {
            SelectItem::Column(c) => c.column = "0xDEAD BEEF".into(),
            _ => unreachable!(),
        }
        assert_eq!(round_trip(&q), q);
    }

    #[test]
    fn batch_round_trip_preserves_order() {
        let batch: Vec<Query> = (0..7)
            .map(|i| parse_query(&format!("SELECT c{i} FROM t WHERE k = {i}")).unwrap())
            .collect();
        let mut w = Writer::new();
        write_queries(&mut w, &batch);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(read_queries(&mut r).unwrap(), batch);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_at_every_prefix_is_an_error_not_a_panic() {
        let q = parse_query(
            "SELECT COUNT(*), x FROM t JOIN u ON t.a = u.b \
             WHERE t.a BETWEEN 1 AND 2 GROUP BY x ORDER BY x LIMIT 3",
        )
        .unwrap();
        let mut w = Writer::new();
        write_query(&mut w, &q);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            // Either the decode fails, or a strict prefix happened to be a
            // complete value — then finish() must flag nothing left over
            // AND the value must differ in length from the original.
            if let Ok(decoded) = read_query(&mut r) {
                assert!(r.finish().is_ok());
                assert_ne!(decoded, q, "cut {cut} decoded to the full query");
            }
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let mut w = Writer::new();
        write_query(&mut w, &parse_query("SELECT a FROM t").unwrap());
        let mut bytes = w.into_bytes();
        bytes[0] = 9; // distinct flag must be 0/1
        assert!(matches!(
            read_query(&mut Reader::new(&bytes)),
            Err(DurabilityError::Codec(_))
        ));
    }

    #[test]
    fn implausible_lengths_fail_fast() {
        let mut w = Writer::new();
        w.u8(0); // distinct = false
        w.u32(u32::MAX); // select list "length"
        let bytes = w.into_bytes();
        let err = read_query(&mut Reader::new(&bytes)).unwrap_err();
        assert!(matches!(err, DurabilityError::Codec(ref s) if s.contains("implausible")));
    }
}
