//! WAL edge-case property tests (ISSUE 10 satellite):
//!
//! 1. **Record round-trip** — encode ≡ decode over arbitrary ciphertext
//!    batches, where "arbitrary" includes AST identifiers no SQL parser
//!    would accept (DET/token ciphertext spellings).
//! 2. **Truncated-tail recovery** — *every* byte prefix of a valid log
//!    replays to a prefix of the records with a valid epoch chain.
//! 3. **Checksum-flip rejection** — flipping any single byte of a small
//!    log yields either a typed error or a strict prefix of the records;
//!    never a changed or invented record.

use dpe_durability::wal::{read_wal, WalRecord, WAL_MAGIC};
use dpe_durability::DurabilityError;
use dpe_sql::{
    AggArg, AggFunc, ColumnRef, CompareOp, Expr, Join, Literal, OrderItem, Query, SelectItem,
    TableRef,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

/// Identifier alphabet skewed toward ciphertext-looking spellings:
/// hex blobs, punctuation, spaces, non-ASCII — nothing a parser accepts.
const IDENT_CHARS: &[char] = &[
    'a', 'Z', '3', 'f', '0', '9', '_', '-', '=', '/', '+', ' ', '\'', '"', '.', 'π', '🔒', '\n',
];

fn ident(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1usize..10);
    (0..len)
        .map(|_| IDENT_CHARS[rng.gen_range(0usize..IDENT_CHARS.len())])
        .collect()
}

fn literal(rng: &mut StdRng) -> Literal {
    match rng.gen_range(0u8..3) {
        0 => Literal::Int(rng.gen::<i64>()),
        1 => Literal::Str(ident(rng)),
        _ => Literal::Null,
    }
}

fn column(rng: &mut StdRng) -> ColumnRef {
    ColumnRef {
        table: if rng.gen_range(0u8..2) == 0 {
            None
        } else {
            Some(ident(rng))
        },
        column: ident(rng),
    }
}

fn expr(rng: &mut StdRng, depth: usize) -> Expr {
    let max = if depth >= 3 { 5 } else { 8 };
    match rng.gen_range(0u8..max) {
        0 => Expr::Comparison {
            col: column(rng),
            op: [
                CompareOp::Eq,
                CompareOp::Ne,
                CompareOp::Lt,
                CompareOp::Le,
                CompareOp::Gt,
                CompareOp::Ge,
            ][rng.gen_range(0usize..6)],
            value: literal(rng),
        },
        1 => Expr::ColumnEq {
            left: column(rng),
            right: column(rng),
        },
        2 => Expr::Between {
            col: column(rng),
            low: literal(rng),
            high: literal(rng),
        },
        3 => Expr::InList {
            col: column(rng),
            list: (0..rng.gen_range(0usize..4))
                .map(|_| literal(rng))
                .collect(),
        },
        4 => Expr::IsNull {
            col: column(rng),
            negated: rng.gen_range(0u8..2) == 1,
        },
        5 => Expr::And(
            Box::new(expr(rng, depth + 1)),
            Box::new(expr(rng, depth + 1)),
        ),
        6 => Expr::Or(
            Box::new(expr(rng, depth + 1)),
            Box::new(expr(rng, depth + 1)),
        ),
        _ => Expr::Not(Box::new(expr(rng, depth + 1))),
    }
}

fn select_item(rng: &mut StdRng) -> SelectItem {
    match rng.gen_range(0u8..3) {
        0 => SelectItem::Wildcard,
        1 => SelectItem::Column(column(rng)),
        _ => SelectItem::Aggregate {
            func: [
                AggFunc::Count,
                AggFunc::Sum,
                AggFunc::Avg,
                AggFunc::Min,
                AggFunc::Max,
            ][rng.gen_range(0usize..5)],
            arg: if rng.gen_range(0u8..2) == 0 {
                AggArg::Star
            } else {
                AggArg::Column(column(rng))
            },
        },
    }
}

fn query(rng: &mut StdRng) -> Query {
    Query {
        distinct: rng.gen_range(0u8..2) == 1,
        select: (0..rng.gen_range(1usize..4))
            .map(|_| select_item(rng))
            .collect(),
        from: TableRef::new(ident(rng)),
        joins: (0..rng.gen_range(0usize..3))
            .map(|_| Join {
                table: TableRef::new(ident(rng)),
                left: column(rng),
                right: column(rng),
            })
            .collect(),
        where_clause: if rng.gen_range(0u8..2) == 1 {
            Some(expr(rng, 0))
        } else {
            None
        },
        group_by: (0..rng.gen_range(0usize..3)).map(|_| column(rng)).collect(),
        order_by: (0..rng.gen_range(0usize..3))
            .map(|_| OrderItem {
                col: column(rng),
                desc: rng.gen_range(0u8..2) == 1,
            })
            .collect(),
        limit: if rng.gen_range(0u8..2) == 1 {
            Some(rng.gen::<u64>())
        } else {
            None
        },
    }
}

/// A WAL image plus the records it was built from: up to `max_records`
/// batches of arbitrary structurally-random queries with contiguous
/// epochs from 1.
struct ArbitraryLog {
    max_records: usize,
}

impl Strategy for ArbitraryLog {
    type Value = Vec<WalRecord>;
    fn sample(&self, rng: &mut StdRng) -> Vec<WalRecord> {
        let n = rng.gen_range(0usize..=self.max_records);
        (0..n)
            .map(|i| WalRecord {
                epoch: i as u64 + 1,
                queries: (0..rng.gen_range(0usize..4)).map(|_| query(rng)).collect(),
            })
            .collect()
    }
}

fn image_of(records: &[WalRecord]) -> Vec<u8> {
    let mut bytes = WAL_MAGIC.to_vec();
    for r in records {
        bytes.extend_from_slice(&r.encode_frame());
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn record_round_trip(records in ArbitraryLog { max_records: 4 }) {
        for r in &records {
            let decoded = WalRecord::decode_payload(&r.encode_payload());
            prop_assert_eq!(decoded.as_ref(), Ok(r));
        }
        let replay = read_wal(&image_of(&records), 0);
        prop_assert!(replay.is_ok());
        let replay = replay.unwrap();
        prop_assert_eq!(&replay.records, &records);
        prop_assert!(!replay.torn_tail);
    }

    #[test]
    fn every_prefix_recovers_to_a_valid_epoch(records in ArbitraryLog { max_records: 3 }) {
        let bytes = image_of(&records);
        for cut in 0..=bytes.len() {
            let prefix = &bytes[..cut];
            match read_wal(prefix, 0) {
                Ok(replay) => {
                    // The replayed records are a prefix of the originals…
                    prop_assert!(replay.records.len() <= records.len(), "cut {}", cut);
                    prop_assert_eq!(
                        &replay.records[..],
                        &records[..replay.records.len()],
                        "cut {}", cut
                    );
                    // …so the recovered epoch chain is 1..=k: valid.
                    for (i, r) in replay.records.iter().enumerate() {
                        prop_assert_eq!(r.epoch, i as u64 + 1);
                    }
                    prop_assert!(replay.valid_len as usize <= cut);
                }
                // A cut inside the 8-byte magic is rejected as corruption.
                Err(DurabilityError::CorruptRecord { offset: 0, .. }) => {
                    prop_assert!(cut > 0 && cut < WAL_MAGIC.len(), "cut {}", cut);
                }
                Err(other) => prop_assert!(false, "cut {}: unexpected {:?}", cut, other),
            }
        }
    }

    #[test]
    fn checksum_flip_at_every_offset_never_invents_records(
        records in ArbitraryLog { max_records: 2 },
        flip in any::<u8>(),
    ) {
        let flip = if flip == 0 { 1 } else { flip };
        let bytes = image_of(&records);
        for offset in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[offset] ^= flip;
            match read_wal(&damaged, 0) {
                // Rejection is the expected outcome for most offsets.
                Err(DurabilityError::CorruptRecord { .. }) => {}
                Err(other) => prop_assert!(false, "offset {}: unexpected {:?}", offset, other),
                // A flip in a length prefix can mimic a torn tail; the
                // replayed records must then be an untouched strict
                // prefix — corruption never changes a record's content.
                Ok(replay) => {
                    prop_assert!(
                        replay.records.len() < records.len()
                            || (records.is_empty() && replay.records.is_empty()),
                        "offset {}: flip must not preserve all records", offset
                    );
                    prop_assert_eq!(
                        &replay.records[..],
                        &records[..replay.records.len()],
                        "offset {}", offset
                    );
                }
            }
        }
    }
}
