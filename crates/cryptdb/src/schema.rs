//! The encrypted schema: name encryption, per-column key material, onion
//! layout, and layer state.

use crate::column::{ColumnPolicy, CryptDbConfig, OnionSet};
use crate::encoding::{encode_value, ident_hex};
use crate::error::CryptDbError;
use crate::onion::{EqLayer, Onion};
use dpe_crypto::kdf::SlotLabel;
use dpe_crypto::scheme::SymmetricScheme;
use dpe_crypto::{Ciphertext, DetScheme, MasterKey, ProbScheme};
use dpe_distance::{AttributeDomain, DomainCatalog};
use dpe_minidb::{ColumnType, TableSchema, Value};
use dpe_ope::{OpeDomain, OpeScheme};
use dpe_paillier::KeyPair;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::BTreeMap;

/// Key material and onion layout of one plaintext column.
pub struct ColumnCrypt {
    /// Unqualified plaintext column name.
    pub plain: String,
    /// Owning plaintext table.
    pub table: String,
    /// Plaintext type.
    pub ty: ColumnType,
    /// Encrypted base identifier (onion columns append their suffix).
    pub enc_base: String,
    /// Onion layout.
    pub onions: OnionSet,
    /// Current EQ onion exposure.
    pub eq_layer: EqLayer,
    det: DetScheme,
    rnd: ProbScheme,
    ope: Option<OpeScheme>,
    /// Domain offset: OPE operates on `(v - bias) as u64`.
    ope_bias: i64,
}

impl ColumnCrypt {
    /// Physical name of an onion column.
    pub fn onion_column(&self, onion: Onion) -> String {
        format!("{}{}", self.enc_base, onion.suffix())
    }

    /// DET ciphertext of a value (the EQ onion's inner layer).
    pub fn det_value(&self, v: &Value) -> Ciphertext {
        // DET ignores the RNG; pass a cheap throwaway.
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        self.det.encrypt(&encode_value(v), &mut rng)
    }

    /// The EQ onion cell as stored: RND(DET(v)) while at RND, DET(v) once
    /// adjusted.
    pub fn eq_cell<R: RngCore>(&self, v: &Value, rng: &mut R) -> Value {
        let det = self.det_value(v);
        match self.eq_layer {
            EqLayer::Rnd => Value::Str(ident_hex(&self.rnd.encrypt(det.as_bytes(), rng))),
            EqLayer::Det => Value::Str(ident_hex(&det)),
        }
    }

    /// Strips the RND layer from a stored EQ cell (adjustment step).
    pub fn peel_rnd(&self, cell: &Value) -> Result<Value, CryptDbError> {
        let Value::Str(s) = cell else {
            return Err(CryptDbError::Decrypt(format!(
                "{}: EQ cell is not a string",
                self.plain
            )));
        };
        let wrapped = crate::encoding::parse_ident_hex(s)
            .ok_or_else(|| CryptDbError::Decrypt(format!("{}: malformed EQ cell", self.plain)))?;
        let det = self
            .rnd
            .decrypt(&wrapped)
            .map_err(|e| CryptDbError::Decrypt(format!("{}: {e}", self.plain)))?;
        Ok(Value::Str(ident_hex(&Ciphertext(det))))
    }

    /// Decrypts an EQ cell back to the plaintext value (proxy side).
    pub fn decrypt_eq_cell(&self, cell: &Value) -> Result<Value, CryptDbError> {
        let Value::Str(s) = cell else {
            return Err(CryptDbError::Decrypt(format!(
                "{}: EQ cell is not a string",
                self.plain
            )));
        };
        let outer = crate::encoding::parse_ident_hex(s)
            .ok_or_else(|| CryptDbError::Decrypt(format!("{}: malformed EQ cell", self.plain)))?;
        let det_bytes = match self.eq_layer {
            EqLayer::Rnd => Ciphertext(
                self.rnd
                    .decrypt(&outer)
                    .map_err(|e| CryptDbError::Decrypt(format!("{}: {e}", self.plain)))?,
            ),
            EqLayer::Det => outer,
        };
        let plain = self
            .det
            .decrypt(&det_bytes)
            .map_err(|e| CryptDbError::Decrypt(format!("{}: {e}", self.plain)))?;
        crate::encoding::decode_value(&plain)
            .ok_or_else(|| CryptDbError::Decrypt(format!("{}: bad value encoding", self.plain)))
    }

    /// OPE ciphertext of an integer value, biased into the scheme's domain
    /// and checked to fit i64 storage.
    pub fn ope_encrypt(&self, v: i64) -> Result<i64, CryptDbError> {
        let ope = self.ope.as_ref().ok_or(CryptDbError::MissingOnion {
            column: self.plain.clone(),
            needed: "order",
        })?;
        let biased =
            v.checked_sub(self.ope_bias)
                .filter(|b| *b >= 0)
                .ok_or_else(|| CryptDbError::OpeOverflow(self.plain.clone()))? as u64;
        let ct = ope
            .encrypt(biased)
            .map_err(|_| CryptDbError::OpeOverflow(self.plain.clone()))?;
        i64::try_from(ct).map_err(|_| CryptDbError::OpeOverflow(self.plain.clone()))
    }

    /// Decrypts an OPE cell back to the plaintext integer.
    pub fn ope_decrypt(&self, ct: i64) -> Result<i64, CryptDbError> {
        let ope = self.ope.as_ref().ok_or(CryptDbError::MissingOnion {
            column: self.plain.clone(),
            needed: "order",
        })?;
        let biased = ope
            .decrypt(ct as u128)
            .map_err(|e| CryptDbError::Decrypt(format!("{}: {e}", self.plain)))?;
        Ok(biased as i64 + self.ope_bias)
    }

    /// `true` when the column's DET key is shared through a join group.
    pub fn join_group(&self) -> Option<&str> {
        self.onions.join_group.as_deref()
    }
}

/// One encrypted table: its encrypted name and physical layout.
pub struct EncTable {
    /// Plaintext name.
    pub plain: String,
    /// Encrypted name.
    pub enc_name: String,
    /// Plaintext column names in declaration order.
    pub columns: Vec<String>,
}

/// The full encrypted schema and key material. The proxy owns one.
pub struct EncryptedSchema {
    tables: BTreeMap<String, EncTable>,
    columns: BTreeMap<String, ColumnCrypt>,
    paillier: KeyPair,
    rel_det: DetScheme,
    attr_det: DetScheme,
}

impl EncryptedSchema {
    /// Builds the encrypted schema for `schemas` under `master`.
    ///
    /// Column names must be globally unique (the workload schema guarantees
    /// it); integer columns with ORD onions must appear in `domains`.
    pub fn build(
        schemas: &[TableSchema],
        domains: &DomainCatalog,
        config: &CryptDbConfig,
        master: &MasterKey,
    ) -> Result<Self, CryptDbError> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let rel_det = DetScheme::new(&SlotLabel::Relation.derive(master));
        let attr_det = DetScheme::new(&SlotLabel::Attribute.derive(master));

        let mut tables = BTreeMap::new();
        let mut columns: BTreeMap<String, ColumnCrypt> = BTreeMap::new();

        for schema in schemas {
            let enc_name = ident_hex(&rel_det.encrypt(schema.name.as_bytes(), &mut rng));
            let mut column_names = Vec::with_capacity(schema.columns.len());
            for col in &schema.columns {
                if columns.contains_key(&col.name) {
                    return Err(CryptDbError::UnsupportedQuery(format!(
                        "column name {} is not globally unique",
                        col.name
                    )));
                }
                let policy = config.policy_for(&col.name);
                let join_group = config.join_groups.get(&col.name).cloned();
                let onions = lower_policy(policy, col.ty, join_group);

                // DET key: shared via join group, or per-column.
                let det_key = match &onions.join_group {
                    Some(group) => SlotLabel::JoinGroup(group).derive(master),
                    None => SlotLabel::OnionLayer(&col.name, "eq", "det").derive(master),
                };
                let rnd_key = SlotLabel::OnionLayer(&col.name, "eq", "rnd").derive(master);

                let (ope, ope_bias) = if onions.ord {
                    let Some(AttributeDomain::Int { lo, hi }) = domains.get(&col.name) else {
                        return Err(CryptDbError::MissingDomain(col.name.clone()));
                    };
                    let size = (*hi - *lo) as u64;
                    let ope_key = SlotLabel::OnionLayer(&col.name, "ord", "ope").derive(master);
                    let scheme = OpeScheme::new(&ope_key, OpeDomain::new(0, size));
                    // The largest ciphertext must fit i64 storage.
                    if i64::try_from(scheme.domain().range_size() - 1).is_err() {
                        return Err(CryptDbError::OpeOverflow(col.name.clone()));
                    }
                    (Some(scheme), *lo)
                } else {
                    (None, 0)
                };

                let enc_base = ident_hex(&attr_det.encrypt(col.name.as_bytes(), &mut rng));
                columns.insert(
                    col.name.clone(),
                    ColumnCrypt {
                        plain: col.name.clone(),
                        table: schema.name.clone(),
                        ty: col.ty,
                        enc_base,
                        onions,
                        eq_layer: EqLayer::Rnd,
                        det: DetScheme::new(&det_key),
                        rnd: ProbScheme::new(&rnd_key),
                        ope,
                        ope_bias,
                    },
                );
                column_names.push(col.name.clone());
            }
            tables.insert(
                schema.name.clone(),
                EncTable {
                    plain: schema.name.clone(),
                    enc_name,
                    columns: column_names,
                },
            );
        }

        let paillier = KeyPair::generate(config.paillier_prime_bits, &mut rng);
        Ok(EncryptedSchema {
            tables,
            columns,
            paillier,
            rel_det,
            attr_det,
        })
    }

    /// The encrypted name of a plaintext table.
    pub fn enc_table_name(&self, plain: &str) -> Result<&str, CryptDbError> {
        self.tables
            .get(plain)
            .map(|t| t.enc_name.as_str())
            .ok_or_else(|| CryptDbError::UnknownTable(plain.to_string()))
    }

    /// Re-derives the encrypted identifier for *any* table name under the
    /// schema's relation-slot DET key — the identifier an ad-hoc query
    /// rewriter would produce even for names not in the catalog (they
    /// simply won't resolve server-side). For catalogued tables this equals
    /// [`EncryptedSchema::enc_table_name`].
    pub fn encrypt_table_ident(&self, name: &str) -> String {
        let mut rng = StdRng::seed_from_u64(0); // DET ignores randomness
        ident_hex(&self.rel_det.encrypt(name.as_bytes(), &mut rng))
    }

    /// Re-derives the encrypted identifier for *any* column name under the
    /// attribute-slot DET key (base name, without an onion suffix).
    pub fn encrypt_column_ident(&self, name: &str) -> String {
        let mut rng = StdRng::seed_from_u64(0);
        ident_hex(&self.attr_det.encrypt(name.as_bytes(), &mut rng))
    }

    /// Column crypto state by plaintext name.
    pub fn column(&self, plain: &str) -> Result<&ColumnCrypt, CryptDbError> {
        self.columns
            .get(plain)
            .ok_or_else(|| CryptDbError::UnknownColumn(plain.to_string()))
    }

    /// Mutable column crypto state (adjustment updates `eq_layer`).
    pub fn column_mut(&mut self, plain: &str) -> Result<&mut ColumnCrypt, CryptDbError> {
        self.columns
            .get_mut(plain)
            .ok_or_else(|| CryptDbError::UnknownColumn(plain.to_string()))
    }

    /// Iterates the plaintext tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &EncTable> {
        self.tables.values()
    }

    /// Iterates all columns in name order.
    pub fn columns(&self) -> impl Iterator<Item = &ColumnCrypt> {
        self.columns.values()
    }

    /// The Paillier key pair (public half is server-visible).
    pub fn paillier(&self) -> &KeyPair {
        &self.paillier
    }

    /// Builds the physical (encrypted) table schemas for the engine.
    pub fn physical_schemas(&self) -> Vec<TableSchema> {
        self.tables
            .values()
            .map(|t| {
                let mut cols: Vec<(String, ColumnType)> = Vec::new();
                for plain_col in &t.columns {
                    let c = &self.columns[plain_col];
                    if c.onions.eq {
                        cols.push((c.onion_column(Onion::Eq), ColumnType::Str));
                    }
                    if c.onions.ord {
                        cols.push((c.onion_column(Onion::Ord), ColumnType::Int));
                    }
                    if c.onions.hom {
                        cols.push((c.onion_column(Onion::Hom), ColumnType::Str));
                    }
                }
                TableSchema::new(
                    t.enc_name.clone(),
                    cols.iter().map(|(n, ty)| (n.as_str(), *ty)).collect(),
                )
            })
            .collect()
    }
}

fn lower_policy(policy: ColumnPolicy, ty: ColumnType, join_group: Option<String>) -> OnionSet {
    let is_int = ty == ColumnType::Int;
    match policy {
        ColumnPolicy::Full => OnionSet {
            eq: true,
            eq_adjustable: true,
            ord: is_int,
            hom: is_int,
            join_group,
        },
        ColumnPolicy::NoHom => OnionSet {
            eq: true,
            eq_adjustable: true,
            ord: is_int,
            hom: false,
            join_group,
        },
        ColumnPolicy::ProbOnly => OnionSet {
            eq: true,
            eq_adjustable: false,
            ord: false,
            hom: false,
            join_group: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_workload::{sky_catalog, sky_domains};

    fn build() -> EncryptedSchema {
        let cfg = CryptDbConfig::default().with_join_group("obj", &["objid", "bestobjid"]);
        EncryptedSchema::build(
            &sky_catalog(),
            &sky_domains(),
            &cfg,
            &MasterKey::from_bytes([7; 32]),
        )
        .unwrap()
    }

    #[test]
    fn names_are_encrypted_and_deterministic() {
        let a = build();
        let b = build();
        assert_eq!(
            a.enc_table_name("photoobj").unwrap(),
            b.enc_table_name("photoobj").unwrap()
        );
        assert_ne!(a.enc_table_name("photoobj").unwrap(), "photoobj");
        assert!(a.enc_table_name("photoobj").unwrap().starts_with('x'));
    }

    #[test]
    fn ad_hoc_ident_encryption_matches_catalog() {
        let s = build();
        // Re-deriving the identifier for a catalogued table equals the
        // stored encrypted name; unknown names still produce stable tokens.
        assert_eq!(
            s.encrypt_table_ident("photoobj"),
            s.enc_table_name("photoobj").unwrap()
        );
        assert_eq!(
            s.encrypt_table_ident("no_such"),
            s.encrypt_table_ident("no_such")
        );
        let ra = s.column("ra").unwrap();
        assert!(ra
            .onion_column(Onion::Eq)
            .starts_with(&s.encrypt_column_ident("ra")));
    }

    #[test]
    fn onion_layout_per_type() {
        let s = build();
        let ra = s.column("ra").unwrap();
        assert!(ra.onions.eq && ra.onions.ord && ra.onions.hom);
        let class = s.column("class").unwrap();
        assert!(class.onions.eq && !class.onions.ord && !class.onions.hom);
    }

    #[test]
    fn join_group_columns_share_det() {
        let s = build();
        let a = s.column("objid").unwrap();
        let b = s.column("bestobjid").unwrap();
        let v = Value::Int(12345);
        assert_eq!(a.det_value(&v), b.det_value(&v));
        // Non-grouped columns do not share keys.
        let ra = s.column("ra").unwrap();
        assert_ne!(a.det_value(&v), ra.det_value(&v));
    }

    #[test]
    fn prob_only_policy_freezes_column() {
        let cfg = CryptDbConfig::default().with_policy("z", ColumnPolicy::ProbOnly);
        let s = EncryptedSchema::build(
            &sky_catalog(),
            &sky_domains(),
            &cfg,
            &MasterKey::from_bytes([7; 32]),
        )
        .unwrap();
        let z = s.column("z").unwrap();
        assert!(!z.onions.eq_adjustable && !z.onions.ord && !z.onions.hom);
    }

    #[test]
    fn physical_schemas_expand_onions() {
        let s = build();
        let phys = s.physical_schemas();
        assert_eq!(phys.len(), 3);
        // photoobj: objid(eq,ord,hom) ra(3) dec(3) rmag(3) class(eq) = 13 cols.
        let photo = phys
            .iter()
            .find(|t| t.name == s.enc_table_name("photoobj").unwrap())
            .unwrap();
        assert_eq!(photo.arity(), 13);
    }

    #[test]
    fn ope_roundtrip_with_bias() {
        let s = build();
        let dec = s.column("dec").unwrap(); // domain [-90_000, 90_000]
        for v in [-90_000, -1, 0, 45_000, 90_000] {
            let ct = dec.ope_encrypt(v).unwrap();
            assert_eq!(dec.ope_decrypt(ct).unwrap(), v);
        }
        // Order preserved across the sign boundary.
        assert!(dec.ope_encrypt(-5).unwrap() < dec.ope_encrypt(5).unwrap());
    }

    #[test]
    fn ope_rejects_out_of_domain() {
        let s = build();
        let dec = s.column("dec").unwrap();
        assert!(matches!(
            dec.ope_encrypt(-90_001),
            Err(CryptDbError::OpeOverflow(_))
        ));
        assert!(matches!(
            dec.ope_encrypt(90_001),
            Err(CryptDbError::OpeOverflow(_))
        ));
    }

    #[test]
    fn eq_cell_rnd_is_probabilistic_det_is_not() {
        let mut s = build();
        let mut rng = StdRng::seed_from_u64(3);
        let ra = s.column("ra").unwrap();
        let v = Value::Int(100);
        assert_ne!(ra.eq_cell(&v, &mut rng), ra.eq_cell(&v, &mut rng));
        s.column_mut("ra").unwrap().eq_layer = EqLayer::Det;
        let ra = s.column("ra").unwrap();
        assert_eq!(ra.eq_cell(&v, &mut rng), ra.eq_cell(&v, &mut rng));
    }

    #[test]
    fn decrypt_eq_cell_roundtrips_both_layers() {
        let mut s = build();
        let mut rng = StdRng::seed_from_u64(4);
        let v = Value::Str("STAR".into());
        let cell = s.column("class").unwrap().eq_cell(&v, &mut rng);
        assert_eq!(
            s.column("class").unwrap().decrypt_eq_cell(&cell).unwrap(),
            v
        );
        // After peeling:
        let peeled = s.column("class").unwrap().peel_rnd(&cell).unwrap();
        s.column_mut("class").unwrap().eq_layer = EqLayer::Det;
        assert_eq!(
            s.column("class").unwrap().decrypt_eq_cell(&peeled).unwrap(),
            v
        );
    }
}
