//! Query rewriting: plaintext query → encrypted query + decryption plan.
//!
//! Each element maps to the onion that supports its operation:
//!
//! | plaintext element | encrypted element |
//! |---|---|
//! | table `t` | `EncRel(t)` |
//! | `col` in SELECT/GROUP BY | `col_eq` |
//! | `col = lit`, `col IN (…)` | `col_eq` vs DET ciphertexts |
//! | `col < lit`, `BETWEEN`, ORDER BY | `col_ord` vs OPE ciphertexts |
//! | `SUM/AVG(col)` | Paillier fold over `col_hom` (ungrouped only) |
//! | `COUNT(*)`, `COUNT(col)`, LIMIT | unchanged / `COUNT(col_eq)` |
//! | `a = b` (join) | `a_eq = b_eq` (shared JOIN-group key required) |

use crate::error::CryptDbError;
use crate::onion::Onion;
use crate::schema::EncryptedSchema;
use dpe_minidb::Value;
use dpe_sql::{
    AggArg, AggFunc, ColumnRef, CompareOp, Expr, Join, Literal, OrderItem, Query, SelectItem,
    TableRef,
};

/// How to decrypt one output column of the rewritten query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputSpec {
    /// EQ onion cell of this plaintext column.
    EqColumn(String),
    /// Plaintext integer passed through (`COUNT`).
    PlainInt,
    /// OPE ciphertext of this plaintext column (`MIN`/`MAX`, ORD fetches).
    OrdColumn(String),
    /// Filled from the HOM plan at this aggregate index.
    Hom(usize),
}

/// One arithmetic aggregate computed by Paillier folding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HomItem {
    /// `SUM(col)`.
    Sum(String),
    /// `AVG(col)` (floor of sum / non-null count, matching the engine).
    Avg(String),
}

/// Server-side fold plan for arithmetic aggregates.
#[derive(Debug, Clone)]
pub struct HomPlan {
    /// Fetch query: selects the needed `_hom` columns with the rewritten
    /// WHERE/joins.
    pub fetch: Query,
    /// Aggregates, indexed by [`OutputSpec::Hom`].
    pub items: Vec<HomItem>,
}

/// The rewriting result.
#[derive(Debug)]
pub struct RewrittenQuery {
    /// The encrypted query (absent when the whole query is a HOM plan).
    pub query: Option<Query>,
    /// Output decryption plan, one entry per result column.
    pub outputs: Vec<OutputSpec>,
    /// Output column headers (plaintext spellings, for client display).
    pub headers: Vec<String>,
    /// Arithmetic-aggregate plan, if any.
    pub hom: Option<HomPlan>,
}

/// Rewrites `q` against `schema`.
///
/// The caller must have adjusted the EQ onions the query needs (see
/// [`crate::adjust`]); rewriting itself is read-only.
pub fn rewrite_query(q: &Query, schema: &EncryptedSchema) -> Result<RewrittenQuery, CryptDbError> {
    let has_arith = q
        .select
        .iter()
        .any(|s| matches!(s, SelectItem::Aggregate { func, .. } if func.is_arithmetic()));
    if has_arith {
        return rewrite_arithmetic(q, schema);
    }

    let mut outputs = Vec::new();
    let mut headers = Vec::new();
    let mut select = Vec::new();
    for item in &q.select {
        match item {
            SelectItem::Wildcard => {
                // Expand `*` into the EQ onions of every column, in schema
                // order — the proxy re-assembles plaintext rows from them.
                for table_name in
                    std::iter::once(&q.from.name).chain(q.joins.iter().map(|j| &j.table.name))
                {
                    let enc_table = schema
                        .tables()
                        .find(|t| &t.plain == table_name)
                        .ok_or_else(|| CryptDbError::UnknownTable(table_name.clone()))?;
                    for col_name in &enc_table.columns {
                        let col = schema.column(col_name)?;
                        select.push(SelectItem::Column(ColumnRef::bare(
                            col.onion_column(Onion::Eq),
                        )));
                        outputs.push(OutputSpec::EqColumn(col_name.clone()));
                        headers.push(col_name.clone());
                    }
                }
            }
            SelectItem::Column(c) => {
                let col = schema.column(&c.column)?;
                select.push(SelectItem::Column(enc_col_ref(schema, c, Onion::Eq)?));
                outputs.push(OutputSpec::EqColumn(col.plain.clone()));
                headers.push(c.to_string());
            }
            SelectItem::Aggregate { func, arg } => {
                let (enc_item, spec) = rewrite_plain_aggregate(schema, *func, arg)?;
                select.push(enc_item);
                outputs.push(spec);
                headers.push(match arg {
                    AggArg::Star => format!("{func}(*)"),
                    AggArg::Column(c) => format!("{func}({c})"),
                });
            }
        }
    }

    let from = TableRef::new(schema.enc_table_name(&q.from.name)?.to_string());
    let joins = q
        .joins
        .iter()
        .map(|j| rewrite_join(schema, j))
        .collect::<Result<Vec<_>, _>>()?;

    let where_clause = q
        .where_clause
        .as_ref()
        .map(|e| rewrite_expr(e, schema))
        .transpose()?;

    let group_by = q
        .group_by
        .iter()
        .map(|c| enc_col_ref(schema, c, Onion::Eq))
        .collect::<Result<Vec<_>, _>>()?;

    let order_by = q
        .order_by
        .iter()
        .map(|o| rewrite_order_item(schema, o, q.limit.is_some()))
        .collect::<Result<Vec<_>, _>>()?;

    Ok(RewrittenQuery {
        query: Some(Query {
            distinct: q.distinct,
            select,
            from,
            joins,
            where_clause,
            group_by,
            order_by,
            limit: q.limit,
        }),
        outputs,
        headers,
        hom: None,
    })
}

fn enc_col_ref(
    schema: &EncryptedSchema,
    c: &ColumnRef,
    onion: Onion,
) -> Result<ColumnRef, CryptDbError> {
    let col = schema.column(&c.column)?;
    let needed = match onion {
        Onion::Eq => col.onions.eq,
        Onion::Ord => col.onions.ord,
        Onion::Hom => col.onions.hom,
    };
    if !needed {
        return Err(CryptDbError::MissingOnion {
            column: c.column.clone(),
            needed: match onion {
                Onion::Eq => "equality",
                Onion::Ord => "order",
                Onion::Hom => "aggregation",
            },
        });
    }
    let table = match &c.table {
        Some(t) => Some(schema.enc_table_name(t)?.to_string()),
        None => None,
    };
    Ok(ColumnRef {
        table,
        column: col.onion_column(onion),
    })
}

fn rewrite_plain_aggregate(
    schema: &EncryptedSchema,
    func: AggFunc,
    arg: &AggArg,
) -> Result<(SelectItem, OutputSpec), CryptDbError> {
    match (func, arg) {
        (AggFunc::Count, AggArg::Star) => Ok((
            SelectItem::Aggregate {
                func,
                arg: AggArg::Star,
            },
            OutputSpec::PlainInt,
        )),
        (AggFunc::Count, AggArg::Column(c)) => Ok((
            SelectItem::Aggregate {
                func,
                arg: AggArg::Column(enc_col_ref(schema, c, Onion::Eq)?),
            },
            OutputSpec::PlainInt,
        )),
        (AggFunc::Min | AggFunc::Max, AggArg::Column(c)) => Ok((
            SelectItem::Aggregate {
                func,
                arg: AggArg::Column(enc_col_ref(schema, c, Onion::Ord)?),
            },
            OutputSpec::OrdColumn(c.column.clone()),
        )),
        (AggFunc::Min | AggFunc::Max, AggArg::Star) => Err(CryptDbError::UnsupportedQuery(
            "MIN/MAX(*) is not valid SQL".into(),
        )),
        (AggFunc::Sum | AggFunc::Avg, _) => {
            unreachable!("arithmetic aggregates take the HOM path")
        }
    }
}

fn rewrite_join(schema: &EncryptedSchema, j: &Join) -> Result<Join, CryptDbError> {
    check_join_group(schema, &j.left.column, &j.right.column)?;
    Ok(Join {
        table: TableRef::new(schema.enc_table_name(&j.table.name)?.to_string()),
        left: enc_col_ref(schema, &j.left, Onion::Eq)?,
        right: enc_col_ref(schema, &j.right, Onion::Eq)?,
    })
}

fn check_join_group(schema: &EncryptedSchema, left: &str, right: &str) -> Result<(), CryptDbError> {
    let lg = schema.column(left)?.join_group().map(str::to_string);
    let rg = schema.column(right)?.join_group().map(str::to_string);
    match (lg, rg) {
        (Some(a), Some(b)) if a == b => Ok(()),
        _ => Err(CryptDbError::UnsupportedQuery(format!(
            "join between {left} and {right} requires a shared JOIN group"
        ))),
    }
}

fn rewrite_order_item(
    schema: &EncryptedSchema,
    o: &OrderItem,
    has_limit: bool,
) -> Result<OrderItem, CryptDbError> {
    let col = schema.column(&o.col.column)?;
    if col.onions.ord {
        Ok(OrderItem {
            col: enc_col_ref(schema, &o.col, Onion::Ord)?,
            desc: o.desc,
        })
    } else if !has_limit {
        // Without LIMIT the order cannot change the result *set*; sort by
        // the EQ onion so the query stays executable (client re-sorts).
        Ok(OrderItem {
            col: enc_col_ref(schema, &o.col, Onion::Eq)?,
            desc: o.desc,
        })
    } else {
        Err(CryptDbError::MissingOnion {
            column: o.col.column.clone(),
            needed: "order (LIMIT)",
        })
    }
}

fn det_literal(
    schema: &EncryptedSchema,
    col: &ColumnRef,
    lit: &Literal,
) -> Result<Literal, CryptDbError> {
    if matches!(lit, Literal::Null) {
        return Ok(Literal::Null);
    }
    let c = schema.column(&col.column)?;
    let value = match lit {
        Literal::Int(v) => Value::Int(*v),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Null => unreachable!(),
    };
    Ok(Literal::Str(crate::encoding::ident_hex(
        &c.det_value(&value),
    )))
}

fn ope_literal(
    schema: &EncryptedSchema,
    col: &ColumnRef,
    lit: &Literal,
    clamp: Clamp,
) -> Result<Literal, CryptDbError> {
    let c = schema.column(&col.column)?;
    match lit {
        Literal::Int(v) => match c.ope_encrypt(*v) {
            Ok(ct) => Ok(Literal::Int(ct)),
            // Out-of-domain range constants are clamped to the nearest
            // representable bound so the predicate keeps its meaning.
            Err(CryptDbError::OpeOverflow(_)) => {
                let bound = match clamp {
                    Clamp::Low => i64::MIN,
                    Clamp::High => i64::MAX,
                };
                Ok(Literal::Int(bound))
            }
            Err(e) => Err(e),
        },
        Literal::Null => Ok(Literal::Null),
        Literal::Str(_) => Err(CryptDbError::MissingOnion {
            column: col.column.clone(),
            needed: "order on a string column",
        }),
    }
}

/// Which way an out-of-domain constant clamps.
#[derive(Clone, Copy)]
enum Clamp {
    Low,
    High,
}

fn rewrite_expr(e: &Expr, schema: &EncryptedSchema) -> Result<Expr, CryptDbError> {
    Ok(match e {
        Expr::Comparison { col, op, value } => match op {
            CompareOp::Eq | CompareOp::Ne => Expr::Comparison {
                col: enc_col_ref(schema, col, Onion::Eq)?,
                op: *op,
                value: det_literal(schema, col, value)?,
            },
            CompareOp::Lt | CompareOp::Le => Expr::Comparison {
                col: enc_col_ref(schema, col, Onion::Ord)?,
                op: *op,
                value: ope_literal(schema, col, value, Clamp::High)?,
            },
            CompareOp::Gt | CompareOp::Ge => Expr::Comparison {
                col: enc_col_ref(schema, col, Onion::Ord)?,
                op: *op,
                value: ope_literal(schema, col, value, Clamp::Low)?,
            },
        },
        Expr::ColumnEq { left, right } => {
            check_join_group(schema, &left.column, &right.column)?;
            Expr::ColumnEq {
                left: enc_col_ref(schema, left, Onion::Eq)?,
                right: enc_col_ref(schema, right, Onion::Eq)?,
            }
        }
        Expr::Between { col, low, high } => Expr::Between {
            col: enc_col_ref(schema, col, Onion::Ord)?,
            low: ope_literal(schema, col, low, Clamp::Low)?,
            high: ope_literal(schema, col, high, Clamp::High)?,
        },
        Expr::InList { col, list } => Expr::InList {
            col: enc_col_ref(schema, col, Onion::Eq)?,
            list: list
                .iter()
                .map(|l| det_literal(schema, col, l))
                .collect::<Result<_, _>>()?,
        },
        Expr::IsNull { col, negated } => Expr::IsNull {
            col: enc_col_ref(schema, col, Onion::Eq)?,
            negated: *negated,
        },
        Expr::And(a, b) => Expr::And(
            Box::new(rewrite_expr(a, schema)?),
            Box::new(rewrite_expr(b, schema)?),
        ),
        Expr::Or(a, b) => Expr::Or(
            Box::new(rewrite_expr(a, schema)?),
            Box::new(rewrite_expr(b, schema)?),
        ),
        Expr::Not(inner) => Expr::Not(Box::new(rewrite_expr(inner, schema)?)),
    })
}

/// Arithmetic aggregates: every select item must be an aggregate and GROUP
/// BY must be empty (CryptDB's HOM UDF limitation, matched here).
fn rewrite_arithmetic(q: &Query, schema: &EncryptedSchema) -> Result<RewrittenQuery, CryptDbError> {
    if !q.group_by.is_empty() {
        return Err(CryptDbError::UnsupportedQuery(
            "grouped arithmetic aggregates are not supported by the HOM onion".into(),
        ));
    }
    let mut items = Vec::new();
    let mut outputs = Vec::new();
    let mut headers = Vec::new();
    let mut fetch_cols = Vec::new();
    for item in &q.select {
        let SelectItem::Aggregate { func, arg } = item else {
            return Err(CryptDbError::UnsupportedQuery(
                "plain columns cannot mix with arithmetic aggregates".into(),
            ));
        };
        match (func, arg) {
            (AggFunc::Sum, AggArg::Column(c)) | (AggFunc::Avg, AggArg::Column(c)) => {
                let hom_ref = enc_col_ref(schema, c, Onion::Hom)?;
                fetch_cols.push(SelectItem::Column(hom_ref));
                let idx = items.len();
                items.push(if *func == AggFunc::Sum {
                    HomItem::Sum(c.column.clone())
                } else {
                    HomItem::Avg(c.column.clone())
                });
                outputs.push(OutputSpec::Hom(idx));
                headers.push(format!("{func}({c})"));
            }
            (AggFunc::Count, AggArg::Star) => {
                // Served from the fetch row count.
                outputs.push(OutputSpec::PlainInt);
                headers.push("COUNT(*)".into());
            }
            _ => {
                return Err(CryptDbError::UnsupportedQuery(format!(
                    "{func} cannot mix with SUM/AVG in this dialect",
                )))
            }
        }
    }
    if fetch_cols.is_empty() {
        return Err(CryptDbError::UnsupportedQuery(
            "no HOM columns to fetch".into(),
        ));
    }

    let from = TableRef::new(schema.enc_table_name(&q.from.name)?.to_string());
    let joins = q
        .joins
        .iter()
        .map(|j| rewrite_join(schema, j))
        .collect::<Result<Vec<_>, _>>()?;
    let where_clause = q
        .where_clause
        .as_ref()
        .map(|e| rewrite_expr(e, schema))
        .transpose()?;

    let fetch = Query {
        distinct: false,
        select: fetch_cols,
        from,
        joins,
        where_clause,
        group_by: Vec::new(),
        order_by: Vec::new(),
        limit: None,
    };

    Ok(RewrittenQuery {
        query: None,
        outputs,
        headers,
        hom: Some(HomPlan { fetch, items }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::CryptDbConfig;
    use dpe_crypto::MasterKey;
    use dpe_sql::parse_query;
    use dpe_workload::{sky_catalog, sky_domains};

    fn schema() -> EncryptedSchema {
        let cfg = CryptDbConfig::default().with_join_group("obj", &["objid", "bestobjid"]);
        EncryptedSchema::build(
            &sky_catalog(),
            &sky_domains(),
            &cfg,
            &MasterKey::from_bytes([1; 32]),
        )
        .unwrap()
    }

    fn rewrite(sql: &str) -> RewrittenQuery {
        rewrite_query(&parse_query(sql).unwrap(), &schema()).unwrap()
    }

    #[test]
    fn equality_routes_to_eq_onion_with_det_constant() {
        let r = rewrite("SELECT objid FROM photoobj WHERE class = 'STAR'");
        let q = r.query.unwrap();
        let Some(Expr::Comparison {
            col,
            op: CompareOp::Eq,
            value,
        }) = q.where_clause
        else {
            panic!()
        };
        assert!(col.column.ends_with("_eq"));
        assert!(matches!(value, Literal::Str(s) if s.starts_with('x')));
    }

    #[test]
    fn det_constants_are_deterministic_and_column_scoped() {
        let s = schema();
        let lit = Literal::Str("STAR".into());
        let c = ColumnRef::bare("class");
        let a = det_literal(&s, &c, &lit).unwrap();
        let b = det_literal(&s, &c, &lit).unwrap();
        assert_eq!(a, b);
        let other = det_literal(&s, &ColumnRef::bare("specclass"), &lit).unwrap();
        assert_ne!(a, other, "per-attribute constant keys");
    }

    #[test]
    fn ranges_route_to_ord_onion_with_ope_constants() {
        let s = schema();
        let r = rewrite("SELECT objid FROM photoobj WHERE ra BETWEEN 1000 AND 2000");
        let q = r.query.unwrap();
        let Some(Expr::Between { col, low, high }) = q.where_clause else {
            panic!()
        };
        assert!(col.column.ends_with("_ord"));
        let (Literal::Int(lo), Literal::Int(hi)) = (low, high) else {
            panic!()
        };
        assert!(lo < hi, "OPE preserves order");
        let ra = s.column("ra").unwrap();
        assert_eq!(ra.ope_decrypt(lo).unwrap(), 1000);
        assert_eq!(ra.ope_decrypt(hi).unwrap(), 2000);
    }

    #[test]
    fn order_by_uses_ord_onion() {
        let r = rewrite("SELECT objid FROM photoobj ORDER BY rmag DESC LIMIT 5");
        let q = r.query.unwrap();
        assert!(q.order_by[0].col.column.ends_with("_ord"));
        assert!(q.order_by[0].desc);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn order_by_string_without_limit_falls_back_to_eq() {
        let r = rewrite("SELECT class, COUNT(*) FROM photoobj GROUP BY class ORDER BY class");
        let q = r.query.unwrap();
        assert!(q.order_by[0].col.column.ends_with("_eq"));
    }

    #[test]
    fn order_by_string_with_limit_is_rejected() {
        let err = rewrite_query(
            &parse_query("SELECT class FROM photoobj ORDER BY class LIMIT 3").unwrap(),
            &schema(),
        )
        .unwrap_err();
        assert!(matches!(err, CryptDbError::MissingOnion { .. }));
    }

    #[test]
    fn join_requires_shared_group() {
        // objid/bestobjid share a group: fine.
        let r =
            rewrite("SELECT z FROM photoobj JOIN specobj ON photoobj.objid = specobj.bestobjid");
        let q = r.query.unwrap();
        assert!(q.joins[0].left.column.ends_with("_eq"));
        // ra/z do not:
        let err = rewrite_query(
            &parse_query("SELECT z FROM photoobj JOIN specobj ON photoobj.ra = specobj.z").unwrap(),
            &schema(),
        )
        .unwrap_err();
        assert!(matches!(err, CryptDbError::UnsupportedQuery(_)));
    }

    #[test]
    fn count_star_passes_through() {
        let r = rewrite("SELECT COUNT(*) FROM photoobj WHERE class = 'QSO'");
        assert_eq!(r.outputs, vec![OutputSpec::PlainInt]);
    }

    #[test]
    fn min_max_route_to_ord() {
        let r = rewrite("SELECT MIN(ra), MAX(ra) FROM photoobj");
        let q = r.query.unwrap();
        for item in &q.select {
            let SelectItem::Aggregate {
                arg: AggArg::Column(c),
                ..
            } = item
            else {
                panic!()
            };
            assert!(c.column.ends_with("_ord"));
        }
        assert_eq!(
            r.outputs,
            vec![
                OutputSpec::OrdColumn("ra".into()),
                OutputSpec::OrdColumn("ra".into())
            ]
        );
    }

    #[test]
    fn sum_avg_produce_hom_plan() {
        let r = rewrite("SELECT AVG(z), SUM(z) FROM specobj WHERE z BETWEEN 10 AND 100000");
        assert!(r.query.is_none());
        let hom = r.hom.unwrap();
        assert_eq!(
            hom.items,
            vec![HomItem::Avg("z".into()), HomItem::Sum("z".into())]
        );
        assert_eq!(hom.fetch.select.len(), 2);
        assert!(hom.fetch.where_clause.is_some());
    }

    #[test]
    fn grouped_sum_rejected() {
        let err = rewrite_query(
            &parse_query("SELECT class, SUM(ra) FROM photoobj GROUP BY class").unwrap(),
            &schema(),
        )
        .unwrap_err();
        assert!(matches!(err, CryptDbError::UnsupportedQuery(_)));
    }

    #[test]
    fn wildcard_expands_to_eq_onions() {
        let r = rewrite("SELECT * FROM neighbors");
        let q = r.query.unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(r.headers, vec!["neighborobjid", "distance"]);
    }

    #[test]
    fn out_of_domain_range_constant_clamps() {
        // 99_999_999 exceeds ra's domain; predicate must stay satisfiable
        // for all in-domain values rather than erroring.
        let r = rewrite("SELECT objid FROM photoobj WHERE ra < 99999999");
        let q = r.query.unwrap();
        let Some(Expr::Comparison {
            value: Literal::Int(v),
            ..
        }) = q.where_clause
        else {
            panic!()
        };
        assert_eq!(v, i64::MAX);
    }

    #[test]
    fn table_and_column_names_are_hidden() {
        let r = rewrite("SELECT ra FROM photoobj WHERE dec > 0");
        let text = r.query.unwrap().to_string();
        assert!(!text.contains("photoobj"));
        assert!(!text.contains("ra ") && !text.contains(" dec"));
    }
}
