//! Whole-database encryption: plaintext [`Database`] → encrypted [`Database`].

use crate::error::CryptDbError;
use crate::schema::EncryptedSchema;
use dpe_minidb::{Database, Value};
use dpe_paillier::PaillierError;
use rand::RngCore;

/// Encrypts every table of `plain` under `schema`, producing the database
/// the untrusted provider stores. Each plaintext cell expands into its
/// onion cells (EQ always; ORD/HOM per layout).
pub fn encrypt_database<R: RngCore>(
    plain: &Database,
    schema: &EncryptedSchema,
    rng: &mut R,
) -> Result<Database, CryptDbError> {
    let mut enc_db = Database::new();
    for phys in schema.physical_schemas() {
        enc_db.create_table(phys)?;
    }

    for enc_table in schema.tables() {
        let table = plain.table(&enc_table.plain)?;
        for row in table.rows() {
            let mut enc_row = Vec::new();
            for (plain_col, value) in enc_table.columns.iter().zip(row) {
                let col = schema.column(plain_col)?;
                if col.onions.eq {
                    enc_row.push(col.eq_cell(value, rng));
                }
                if col.onions.ord {
                    enc_row.push(match value {
                        Value::Int(v) => Value::Int(col.ope_encrypt(*v)?),
                        Value::Null => Value::Null,
                        Value::Str(_) => {
                            return Err(CryptDbError::UnsupportedQuery(format!(
                                "ORD onion on string column {plain_col}"
                            )))
                        }
                    });
                }
                if col.onions.hom {
                    enc_row.push(match value {
                        Value::Int(v) => Value::Str(hom_cell(schema, *v, rng)?),
                        Value::Null => Value::Null,
                        Value::Str(_) => {
                            return Err(CryptDbError::UnsupportedQuery(format!(
                                "HOM onion on string column {plain_col}"
                            )))
                        }
                    });
                }
            }
            enc_db.insert(&enc_table.enc_name, enc_row)?;
        }
    }
    Ok(enc_db)
}

/// Paillier-encrypts a (non-negative-shifted) integer into a hex cell.
///
/// Values are shifted by `i64::MIN` into `u64` space so negative plaintexts
/// encrypt; the proxy shifts back after decryption.
fn hom_cell<R: RngCore>(
    schema: &EncryptedSchema,
    v: i64,
    rng: &mut R,
) -> Result<String, CryptDbError> {
    let shifted = (v as i128 - i64::MIN as i128) as u64;
    let ct = schema.paillier().public().encrypt_u64(shifted, rng);
    Ok(ct.value().to_hex())
}

/// Decodes a HOM cell back into the Paillier ciphertext.
pub fn parse_hom_cell(cell: &Value) -> Result<dpe_paillier::Ciphertext, CryptDbError> {
    let Value::Str(hex) = cell else {
        return Err(CryptDbError::Decrypt("HOM cell is not a string".into()));
    };
    let n = dpe_bignum_from_hex(hex)
        .ok_or_else(|| CryptDbError::Decrypt("malformed HOM cell".into()))?;
    Ok(dpe_paillier::Ciphertext::new(n))
}

fn dpe_bignum_from_hex(hex: &str) -> Option<dpe_bignum::BigUint> {
    dpe_bignum::BigUint::from_hex(hex).ok()
}

/// Undoes the `hom_cell` sign shift after decryption.
pub fn unshift_hom(plain: u64) -> i64 {
    (plain as i128 + i64::MIN as i128) as i64
}

/// Maps Paillier decryption failures into this crate's error type.
pub fn hom_decrypt_error(e: PaillierError) -> CryptDbError {
    CryptDbError::Decrypt(format!("Paillier: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::CryptDbConfig;
    use crate::onion::Onion;
    use dpe_crypto::MasterKey;
    use dpe_workload::{generate_database, sky_catalog, sky_domains};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Database, EncryptedSchema, Database) {
        let plain = generate_database(30, 5);
        let schema = EncryptedSchema::build(
            &sky_catalog(),
            &sky_domains(),
            &CryptDbConfig::default(),
            &MasterKey::from_bytes([9; 32]),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let enc = encrypt_database(&plain, &schema, &mut rng).unwrap();
        (plain, schema, enc)
    }

    #[test]
    fn row_counts_preserved() {
        let (plain, schema, enc) = setup();
        for t in schema.tables() {
            assert_eq!(
                plain.table(&t.plain).unwrap().len(),
                enc.table(&t.enc_name).unwrap().len(),
                "table {}",
                t.plain
            );
        }
    }

    #[test]
    fn no_plaintext_leaks_into_cells() {
        let (plain, schema, enc) = setup();
        // Spot-check: the class strings never appear in the encrypted table.
        let enc_name = schema.enc_table_name("photoobj").unwrap();
        for row in enc.table(enc_name).unwrap().rows() {
            for cell in row {
                if let Value::Str(s) = cell {
                    assert!(!s.contains("STAR") && !s.contains("GALAXY") && !s.contains("QSO"));
                }
            }
        }
        drop(plain);
    }

    #[test]
    fn ord_onion_preserves_order() {
        let (plain, schema, enc) = setup();
        let enc_name = schema.enc_table_name("photoobj").unwrap();
        let ra = schema.column("ra").unwrap();
        let ord_col = ra.onion_column(Onion::Ord);
        let phys = enc.table(enc_name).unwrap();
        let idx = phys.schema().column_index(&ord_col).unwrap();
        let plain_rows = plain.table("photoobj").unwrap().rows();
        // Compare the induced orders of the first few row pairs.
        for i in 0..plain_rows.len().min(10) {
            for j in 0..plain_rows.len().min(10) {
                let (Value::Int(pi), Value::Int(pj)) = (&plain_rows[i][1], &plain_rows[j][1])
                else {
                    panic!()
                };
                let (Value::Int(ci), Value::Int(cj)) = (&phys.rows()[i][idx], &phys.rows()[j][idx])
                else {
                    panic!()
                };
                assert_eq!(pi.cmp(pj), ci.cmp(cj));
            }
        }
    }

    #[test]
    fn hom_cells_decrypt_through_shift() {
        let (plain, schema, enc) = setup();
        let enc_name = schema.enc_table_name("photoobj").unwrap();
        let ra = schema.column("ra").unwrap();
        let hom_col = ra.onion_column(Onion::Hom);
        let phys = enc.table(enc_name).unwrap();
        let idx = phys.schema().column_index(&hom_col).unwrap();
        let ct = parse_hom_cell(&phys.rows()[0][idx]).unwrap();
        let dec = schema.paillier().private().decrypt_u64(&ct).unwrap();
        let Value::Int(expect) = plain.table("photoobj").unwrap().rows()[0][1] else {
            panic!()
        };
        assert_eq!(unshift_hom(dec), expect);
    }
}
