//! Canonical byte encoding of plaintext values and hex identifiers.
//!
//! DET/RND schemes operate on bytes; values are encoded with a one-byte type
//! tag so `Int(1)` and `Str("1")` can never collide. Encrypted identifiers
//! and ciphertext-bearing string cells are rendered as lowercase hex with a
//! leading letter so they lex as SQL identifiers.

use dpe_crypto::Ciphertext;
use dpe_minidb::Value;

/// Encodes a value for symmetric encryption.
pub fn encode_value(v: &Value) -> Vec<u8> {
    match v {
        Value::Int(i) => {
            let mut out = Vec::with_capacity(9);
            out.push(b'i');
            out.extend_from_slice(&i.to_be_bytes());
            out
        }
        Value::Str(s) => {
            let mut out = Vec::with_capacity(1 + s.len());
            out.push(b's');
            out.extend_from_slice(s.as_bytes());
            out
        }
        Value::Null => vec![b'n'],
    }
}

/// Decodes bytes produced by [`encode_value`].
pub fn decode_value(bytes: &[u8]) -> Option<Value> {
    match bytes.split_first()? {
        (b'i', rest) => Some(Value::Int(i64::from_be_bytes(rest.try_into().ok()?))),
        (b's', rest) => Some(Value::Str(String::from_utf8(rest.to_vec()).ok()?)),
        (b'n', []) => Some(Value::Null),
        _ => None,
    }
}

/// Renders a ciphertext as an identifier-safe token: `x` + lowercase hex.
pub fn ident_hex(ct: &Ciphertext) -> String {
    format!("x{}", ct.to_hex())
}

/// Parses an [`ident_hex`] token back into ciphertext bytes.
pub fn parse_ident_hex(s: &str) -> Option<Ciphertext> {
    let hex = s.strip_prefix('x')?;
    if hex.len() % 2 != 0 {
        return None;
    }
    let mut bytes = Vec::with_capacity(hex.len() / 2);
    for i in (0..hex.len()).step_by(2) {
        bytes.push(u8::from_str_radix(&hex[i..i + 2], 16).ok()?);
    }
    Some(Ciphertext(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrips() {
        for v in [
            Value::Int(0),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Str("αβ".into()),
            Value::Str(String::new()),
            Value::Null,
        ] {
            assert_eq!(decode_value(&encode_value(&v)), Some(v));
        }
    }

    #[test]
    fn tags_prevent_cross_type_collisions() {
        assert_ne!(
            encode_value(&Value::Int(49)),
            encode_value(&Value::Str("1".into()))
        );
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert_eq!(decode_value(&[]), None);
        assert_eq!(decode_value(&[b'i', 0, 0]), None); // short int
        assert_eq!(decode_value(&[b'q', 1]), None); // unknown tag
        assert_eq!(decode_value(&[b'n', 0]), None); // trailing byte
    }

    #[test]
    fn ident_hex_roundtrips_and_lexes() {
        let ct = Ciphertext(vec![0xde, 0xad, 0x00, 0x01]);
        let s = ident_hex(&ct);
        assert_eq!(s, "xdead0001");
        assert_eq!(parse_ident_hex(&s), Some(ct));
        // Lexes as one SQL identifier:
        let toks = dpe_sql::token::lex(&s).unwrap();
        assert_eq!(toks.len(), 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_ident_hex("dead"), None); // missing prefix
        assert_eq!(parse_ident_hex("xdea"), None); // odd length
        assert_eq!(parse_ident_hex("xzz"), None); // non-hex
    }
}
