//! Onion adjustment: peeling RND → DET in place.
//!
//! CryptDB's proxy issues `UPDATE t SET c = DECRYPT_RND(key, c)` when a
//! query first needs server-side equality on `c`. Here the proxy walks the
//! stored column, strips the RND layer from every cell, and records the new
//! exposure in the schema. Adjustment is monotone: a column never goes back
//! up, and columns frozen by policy (`eq_adjustable = false`) refuse.

use crate::error::CryptDbError;
use crate::onion::{EqLayer, Onion};
use crate::schema::EncryptedSchema;
use dpe_minidb::Database;
use dpe_sql::{analysis, AggArg, AggFunc, Expr, Query, SelectItem};
use std::collections::BTreeSet;

/// Columns whose EQ onion must be at DET for `query` to run server-side:
/// equality/IN predicates, GROUP BY keys, join columns, and `COUNT(col)`
/// arguments.
pub fn columns_needing_det(query: &Query) -> BTreeSet<String> {
    let mut need = BTreeSet::new();
    for join in &query.joins {
        need.insert(join.left.column.clone());
        need.insert(join.right.column.clone());
    }
    for c in &query.group_by {
        need.insert(c.column.clone());
    }
    for item in &query.select {
        if let SelectItem::Aggregate {
            func: AggFunc::Count,
            arg: AggArg::Column(c),
        } = item
        {
            need.insert(c.column.clone());
        }
    }
    if let Some(expr) = &query.where_clause {
        collect_eq_columns(expr, &mut need);
    }
    need
}

fn collect_eq_columns(expr: &Expr, out: &mut BTreeSet<String>) {
    match expr {
        Expr::Comparison { col, op, .. } => {
            if matches!(op, dpe_sql::CompareOp::Eq | dpe_sql::CompareOp::Ne) {
                out.insert(col.column.clone());
            }
        }
        Expr::InList { col, .. } => {
            out.insert(col.column.clone());
        }
        Expr::ColumnEq { left, right } => {
            out.insert(left.column.clone());
            out.insert(right.column.clone());
        }
        Expr::Between { .. } | Expr::IsNull { .. } => {}
        Expr::And(a, b) | Expr::Or(a, b) => {
            collect_eq_columns(a, out);
            collect_eq_columns(b, out);
        }
        Expr::Not(inner) => collect_eq_columns(inner, out),
    }
}

/// Adjusts one column's EQ onion to DET (no-op when already there).
pub fn adjust_to_det(
    schema: &mut EncryptedSchema,
    enc_db: &mut Database,
    column: &str,
) -> Result<(), CryptDbError> {
    let col = schema.column(column)?;
    if col.eq_layer == EqLayer::Det {
        return Ok(());
    }
    if !col.onions.eq_adjustable {
        return Err(CryptDbError::AdjustmentForbidden(column.to_string()));
    }

    let enc_table = schema.enc_table_name(&col.table)?.to_string();
    let onion_col = col.onion_column(Onion::Eq);

    // Peel every stored cell; abort on the first malformed cell.
    let mut failure = None;
    enc_db
        .table_mut(&enc_table)?
        .map_column(&onion_col, |cell| {
            if failure.is_some() {
                return cell.clone();
            }
            match schema.column(column).and_then(|c| c.peel_rnd(cell)) {
                Ok(peeled) => peeled,
                Err(e) => {
                    failure = Some(e);
                    cell.clone()
                }
            }
        })?;
    if let Some(e) = failure {
        return Err(e);
    }

    schema.column_mut(column)?.eq_layer = EqLayer::Det;
    Ok(())
}

/// Adjusts every column `query` needs; returns the columns that moved.
pub fn adjust_for_query(
    schema: &mut EncryptedSchema,
    enc_db: &mut Database,
    query: &Query,
) -> Result<Vec<String>, CryptDbError> {
    let mut moved = Vec::new();
    for column in columns_needing_det(query) {
        let before = schema.column(&column)?.eq_layer;
        adjust_to_det(schema, enc_db, &column)?;
        if before == EqLayer::Rnd {
            moved.push(column);
        }
    }
    Ok(moved)
}

/// Adjusts **all** columns mentioned by any query of `log` — plus every
/// column the log projects — to DET. The result-distance DPE scheme calls
/// this once so the provider sees deterministic result tuples.
pub fn adjust_log_columns(
    schema: &mut EncryptedSchema,
    enc_db: &mut Database,
    log: &[Query],
) -> Result<(), CryptDbError> {
    let mut columns = BTreeSet::new();
    for q in log {
        columns.extend(analysis::attributes(q));
    }
    for column in columns {
        adjust_to_det(schema, enc_db, &column)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{ColumnPolicy, CryptDbConfig};
    use crate::encryptor::encrypt_database;
    use dpe_crypto::MasterKey;
    use dpe_minidb::Value;
    use dpe_sql::parse_query;
    use dpe_workload::{generate_database, sky_catalog, sky_domains};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(cfg: CryptDbConfig) -> (EncryptedSchema, Database) {
        let plain = generate_database(20, 5);
        let schema = EncryptedSchema::build(
            &sky_catalog(),
            &sky_domains(),
            &cfg,
            &MasterKey::from_bytes([9; 32]),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let enc = encrypt_database(&plain, &schema, &mut rng).unwrap();
        (schema, enc)
    }

    #[test]
    fn detects_equality_columns() {
        let q = parse_query(
            "SELECT class, COUNT(objid) FROM photoobj \
             WHERE class = 'STAR' AND ra > 5 AND dec IN (1, 2) GROUP BY class",
        )
        .unwrap();
        let need = columns_needing_det(&q);
        assert!(need.contains("class") && need.contains("dec") && need.contains("objid"));
        assert!(!need.contains("ra"), "range-only columns stay at RND");
    }

    #[test]
    fn join_columns_detected() {
        let q = parse_query(
            "SELECT z FROM photoobj JOIN specobj ON photoobj.objid = specobj.bestobjid",
        )
        .unwrap();
        let need = columns_needing_det(&q);
        assert!(need.contains("objid") && need.contains("bestobjid"));
    }

    #[test]
    fn adjustment_makes_cells_deterministic() {
        let (mut schema, mut enc) = setup(CryptDbConfig::default());
        adjust_to_det(&mut schema, &mut enc, "class").unwrap();
        assert_eq!(schema.column("class").unwrap().eq_layer, EqLayer::Det);

        // After peeling, equal plaintext classes share ciphertexts.
        let enc_name = schema.enc_table_name("photoobj").unwrap();
        let class = schema.column("class").unwrap();
        let col = class.onion_column(Onion::Eq);
        let phys = enc.table(enc_name).unwrap();
        let idx = phys.schema().column_index(&col).unwrap();
        let distinct: std::collections::BTreeSet<&Value> =
            phys.rows().iter().map(|r| &r[idx]).collect();
        assert!(
            distinct.len() <= 3,
            "at most 3 classes → ≤ 3 DET ciphertexts"
        );
    }

    #[test]
    fn adjustment_is_idempotent() {
        let (mut schema, mut enc) = setup(CryptDbConfig::default());
        adjust_to_det(&mut schema, &mut enc, "class").unwrap();
        let snapshot: Vec<_> = {
            let t = enc
                .table(schema.enc_table_name("photoobj").unwrap())
                .unwrap();
            t.rows().to_vec()
        };
        adjust_to_det(&mut schema, &mut enc, "class").unwrap();
        let after: Vec<_> = {
            let t = enc
                .table(schema.enc_table_name("photoobj").unwrap())
                .unwrap();
            t.rows().to_vec()
        };
        assert_eq!(snapshot, after);
    }

    #[test]
    fn frozen_columns_refuse() {
        let cfg = CryptDbConfig::default().with_policy("z", ColumnPolicy::ProbOnly);
        let (mut schema, mut enc) = setup(cfg);
        assert!(matches!(
            adjust_to_det(&mut schema, &mut enc, "z"),
            Err(CryptDbError::AdjustmentForbidden(_))
        ));
    }

    #[test]
    fn adjust_for_query_reports_moved_columns() {
        let (mut schema, mut enc) = setup(CryptDbConfig::default());
        let q = parse_query("SELECT objid FROM photoobj WHERE class = 'STAR'").unwrap();
        let moved = adjust_for_query(&mut schema, &mut enc, &q).unwrap();
        assert_eq!(moved, vec!["class".to_string()]);
        // Second time: nothing moves.
        let moved = adjust_for_query(&mut schema, &mut enc, &q).unwrap();
        assert!(moved.is_empty());
    }
}
