//! Standalone identifier rewriter for ad-hoc queries against schemas that
//! only exist server-side.
//!
//! [`IdentRewriter`] derives the same relation/attribute DET keys an
//! [`crate::EncryptedSchema`] derives from the master key, but without
//! needing the catalog, domains or Paillier material — just enough to map
//! `SELECT item FROM pairs WHERE …` onto its encrypted spelling. It plugs
//! into [`dpe_sql::analysis::rewrite_query`] as an
//! [`IdentifierTransform`]: relation and attribute names are replaced by
//! their DET-encrypted hex identifiers, while **constants pass through in
//! the clear** — the front door it serves (`dpe-server`'s SQL surface)
//! queries distance columns, and distances are provider-visible by
//! definition under the paper's DPE threat model.

use crate::encoding::ident_hex;
use dpe_crypto::kdf::SlotLabel;
use dpe_crypto::scheme::SymmetricScheme;
use dpe_crypto::{DetScheme, MasterKey};
use dpe_sql::analysis::IdentifierTransform;
use dpe_sql::{ColumnRef, Literal};
use rand::rngs::mock::StepRng;

/// Encrypts table and column identifiers under the master key's
/// relation/attribute DET slots; leaves constants untouched.
pub struct IdentRewriter {
    rel_det: DetScheme,
    attr_det: DetScheme,
}

impl IdentRewriter {
    /// Derives the relation- and attribute-slot DET schemes from `master` —
    /// the same slots [`crate::EncryptedSchema::build`] uses, so identifiers
    /// agree with a catalog built from the same key.
    pub fn new(master: &MasterKey) -> Self {
        IdentRewriter {
            rel_det: DetScheme::new(&SlotLabel::Relation.derive(master)),
            attr_det: DetScheme::new(&SlotLabel::Attribute.derive(master)),
        }
    }

    /// The encrypted identifier of a table name.
    pub fn table_ident(&self, name: &str) -> String {
        // DET ignores the RNG; pass a cheap throwaway.
        let mut rng = StepRng::new(0, 1);
        ident_hex(&self.rel_det.encrypt(name.as_bytes(), &mut rng))
    }

    /// The encrypted identifier of a column name (base name, without an
    /// onion suffix).
    pub fn column_ident(&self, name: &str) -> String {
        let mut rng = StepRng::new(0, 1);
        ident_hex(&self.attr_det.encrypt(name.as_bytes(), &mut rng))
    }
}

impl IdentifierTransform for IdentRewriter {
    fn relation(&mut self, name: &str) -> String {
        self.table_ident(name)
    }

    fn attribute(&mut self, name: &str) -> String {
        self.column_ident(name)
    }

    fn constant(&mut self, _col: &ColumnRef, value: &Literal) -> Literal {
        value.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_sql::analysis::rewrite_query;
    use dpe_sql::parse_query;

    #[test]
    fn identifiers_match_encrypted_schema() {
        use crate::column::CryptDbConfig;
        use dpe_workload::{sky_catalog, sky_domains};
        let master = MasterKey::from_bytes([7; 32]);
        let schema = crate::EncryptedSchema::build(
            &sky_catalog(),
            &sky_domains(),
            &CryptDbConfig::default(),
            &master,
        )
        .unwrap();
        let r = IdentRewriter::new(&master);
        assert_eq!(
            r.table_ident("photoobj"),
            schema.encrypt_table_ident("photoobj")
        );
        assert_eq!(r.column_ident("ra"), schema.encrypt_column_ident("ra"));
    }

    #[test]
    fn rewrite_encrypts_idents_and_keeps_constants() {
        let master = MasterKey::from_bytes([9; 32]);
        let mut r = IdentRewriter::new(&master);
        let q = parse_query("SELECT item FROM pairs WHERE anchor = 3 AND dist <= 42").unwrap();
        let enc = rewrite_query(&q, &mut r);
        assert_eq!(enc.from.name, r.table_ident("pairs"));
        assert_ne!(enc.from.name, "pairs");
        let text = enc.to_string();
        assert!(text.contains("= 3") && text.contains("<= 42"), "{text}");
        assert!(!text.contains("anchor") && !text.contains("dist"), "{text}");
    }

    #[test]
    fn rewriting_is_deterministic_per_key() {
        let a = IdentRewriter::new(&MasterKey::from_bytes([1; 32]));
        let b = IdentRewriter::new(&MasterKey::from_bytes([1; 32]));
        let c = IdentRewriter::new(&MasterKey::from_bytes([2; 32]));
        assert_eq!(a.table_ident("pairs"), b.table_ident("pairs"));
        assert_ne!(a.table_ident("pairs"), c.table_ident("pairs"));
    }
}
