//! The CryptDB proxy: the trusted component tying everything together.

use crate::adjust;
use crate::column::CryptDbConfig;
use crate::encryptor::{encrypt_database, hom_decrypt_error, parse_hom_cell};
use crate::error::CryptDbError;
use crate::rewrite::{rewrite_query, HomItem, OutputSpec, RewrittenQuery};
use crate::schema::EncryptedSchema;
use dpe_crypto::MasterKey;
use dpe_distance::DomainCatalog;
use dpe_minidb::{execute, Database, ResultSet, TableSchema, Value};
use dpe_paillier::EncryptedSum;
use dpe_sql::Query;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The proxy owns the key material, the encrypted schema and — standing in
/// for the untrusted provider — the encrypted database.
pub struct CryptDbProxy {
    schema: EncryptedSchema,
    enc_db: Database,
    rng: StdRng,
}

impl CryptDbProxy {
    /// Encrypts `plain_db` under a fresh schema derived from `master`.
    pub fn new(
        plain_db: &Database,
        table_schemas: &[TableSchema],
        domains: &DomainCatalog,
        config: &CryptDbConfig,
        master: &MasterKey,
    ) -> Result<Self, CryptDbError> {
        let schema = EncryptedSchema::build(table_schemas, domains, config, master)?;
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9E3779B97F4A7C15);
        let enc_db = encrypt_database(plain_db, &schema, &mut rng)?;
        Ok(CryptDbProxy {
            schema,
            enc_db,
            rng,
        })
    }

    /// The encrypted schema (key material included — trusted side only).
    pub fn schema(&self) -> &EncryptedSchema {
        &self.schema
    }

    /// The encrypted database — everything the untrusted provider sees.
    pub fn encrypted_database(&self) -> &Database {
        &self.enc_db
    }

    /// End-to-end execution: adjust onions, rewrite, run on the encrypted
    /// engine, decrypt the results. What a client of the proxy observes is
    /// plaintext-in, plaintext-out.
    pub fn execute(&mut self, q: &Query) -> Result<ResultSet, CryptDbError> {
        adjust::adjust_for_query(&mut self.schema, &mut self.enc_db, q)?;
        // DISTINCT compares ciphertexts server-side: projected columns need
        // DET exposure for ciphertext equality to mirror plaintext equality.
        if q.distinct {
            for attr in dpe_sql::analysis::attributes(q) {
                adjust::adjust_to_det(&mut self.schema, &mut self.enc_db, &attr)?;
            }
        }
        let rewritten = rewrite_query(q, &self.schema)?;
        let enc_result = self.run_rewritten(&rewritten)?;
        self.decrypt_result(&rewritten, enc_result)
    }

    /// Executes the encrypted side only: returns the rewritten query and
    /// the raw encrypted result set (what the provider computes distances
    /// on). Arithmetic aggregates are rejected — their folded ciphertexts
    /// are probabilistic and carry no deterministic tuple representation.
    pub fn execute_encrypted(&mut self, q: &Query) -> Result<(Query, ResultSet), CryptDbError> {
        adjust::adjust_for_query(&mut self.schema, &mut self.enc_db, q)?;
        let rewritten = rewrite_query(q, &self.schema)?;
        let Some(enc_query) = rewritten.query else {
            return Err(CryptDbError::UnsupportedQuery(
                "arithmetic aggregates have no deterministic encrypted results".into(),
            ));
        };
        let result = execute(&self.enc_db, &enc_query)?;
        Ok((enc_query, result))
    }

    /// Pre-adjusts every column any query of `log` touches (the
    /// result-distance DPE scheme's setup step).
    pub fn adjust_for_log(&mut self, log: &[Query]) -> Result<(), CryptDbError> {
        adjust::adjust_log_columns(&mut self.schema, &mut self.enc_db, log)
    }

    fn run_rewritten(&mut self, rewritten: &RewrittenQuery) -> Result<ResultSet, CryptDbError> {
        match (&rewritten.query, &rewritten.hom) {
            (Some(q), None) => Ok(execute(&self.enc_db, q)?),
            (None, Some(plan)) => {
                // Server side: fetch the HOM cells and fold with the public
                // key (the Paillier product is CryptDB's server UDF).
                let fetched = execute(&self.enc_db, &plan.fetch)?;
                let public = self.schema.paillier().public().clone();
                let mut row = Vec::with_capacity(plan.items.len());
                for (idx, _item) in plan.items.iter().enumerate() {
                    let mut sum = EncryptedSum::new(&public, &mut self.rng);
                    for r in &fetched.rows {
                        if r[idx].is_null() {
                            continue;
                        }
                        sum.add(&parse_hom_cell(&r[idx])?);
                    }
                    row.push((sum.count(), sum.into_ciphertext()));
                }
                // Pack the fold results into a synthetic one-row result set:
                // column i holds ciphertext hex, with the count in a header
                // row encoded as Int — handled in decrypt_result.
                let rows = vec![row
                    .iter()
                    .flat_map(|(count, ct)| {
                        [Value::Int(*count as i64), Value::Str(ct.value().to_hex())]
                    })
                    .collect()];
                Ok(ResultSet {
                    columns: vec![],
                    rows,
                })
            }
            _ => Err(CryptDbError::UnsupportedQuery(
                "malformed rewrite plan".into(),
            )),
        }
    }

    fn decrypt_result(
        &self,
        rewritten: &RewrittenQuery,
        enc: ResultSet,
    ) -> Result<ResultSet, CryptDbError> {
        let mut rows = Vec::with_capacity(enc.rows.len());
        match &rewritten.hom {
            None => {
                for enc_row in &enc.rows {
                    let mut row = Vec::with_capacity(rewritten.outputs.len());
                    for (spec, cell) in rewritten.outputs.iter().zip(enc_row) {
                        row.push(self.decrypt_cell(spec, cell)?);
                    }
                    rows.push(row);
                }
            }
            Some(plan) => {
                // One synthetic row: (count, ct_hex) pairs per item.
                let packed = &enc.rows[0];
                let mut row = Vec::with_capacity(rewritten.outputs.len());
                let mut count_any = 0i64;
                for spec in &rewritten.outputs {
                    match spec {
                        OutputSpec::Hom(idx) => {
                            let Value::Int(count) = packed[idx * 2] else {
                                return Err(CryptDbError::Decrypt("bad HOM packing".into()));
                            };
                            count_any = count;
                            let ct = parse_hom_cell(&packed[idx * 2 + 1])?;
                            let dec = self
                                .schema
                                .paillier()
                                .private()
                                .decrypt(&ct)
                                .map_err(hom_decrypt_error)?;
                            let total = dec
                                .to_u128()
                                .ok_or_else(|| CryptDbError::Decrypt("HOM sum overflow".into()))?;
                            // Each folded term was shifted by 2^63.
                            let sum = total as i128 - (count as i128) * (1i128 << 63);
                            let value = match &plan.items[*idx] {
                                _ if count == 0 => Value::Null,
                                HomItem::Sum(_) => Value::Int(sum as i64),
                                HomItem::Avg(_) => {
                                    Value::Int((sum.div_euclid(count as i128)) as i64)
                                }
                            };
                            row.push(value);
                        }
                        OutputSpec::PlainInt => {
                            // COUNT(*) in an arithmetic query: the fetch row
                            // count equals the total row count.
                            row.push(Value::Int(count_any));
                        }
                        other => {
                            return Err(CryptDbError::UnsupportedQuery(format!(
                                "{other:?} inside a HOM plan"
                            )))
                        }
                    }
                }
                rows.push(row);
            }
        }
        Ok(ResultSet {
            columns: rewritten.headers.clone(),
            rows,
        })
    }

    fn decrypt_cell(&self, spec: &OutputSpec, cell: &Value) -> Result<Value, CryptDbError> {
        match spec {
            OutputSpec::PlainInt => Ok(cell.clone()),
            OutputSpec::EqColumn(plain) => {
                if cell.is_null() {
                    return Ok(Value::Null);
                }
                self.schema.column(plain)?.decrypt_eq_cell(cell)
            }
            OutputSpec::OrdColumn(plain) => match cell {
                Value::Null => Ok(Value::Null),
                Value::Int(ct) => Ok(Value::Int(self.schema.column(plain)?.ope_decrypt(*ct)?)),
                Value::Str(_) => Err(CryptDbError::Decrypt("ORD cell is not an int".into())),
            },
            OutputSpec::Hom(_) => Err(CryptDbError::Decrypt("HOM outside a HOM plan".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{ColumnPolicy, CryptDbConfig};
    use dpe_sql::parse_query;
    use dpe_workload::{generate_database, sky_catalog, sky_domains, LogConfig, LogGenerator};

    fn proxy_with(config: CryptDbConfig) -> (Database, CryptDbProxy) {
        let plain = generate_database(40, 77);
        let proxy = CryptDbProxy::new(
            &plain,
            &sky_catalog(),
            &sky_domains(),
            &config,
            &MasterKey::from_bytes([3; 32]),
        )
        .unwrap();
        (plain, proxy)
    }

    fn proxy() -> (Database, CryptDbProxy) {
        proxy_with(CryptDbConfig::default().with_join_group("obj", &["objid", "bestobjid"]))
    }

    /// The central CryptDB correctness property: encrypted execution
    /// produces the same rows as plaintext execution.
    #[track_caller]
    fn assert_transparent(plain: &Database, proxy: &mut CryptDbProxy, sql: &str) {
        let q = parse_query(sql).unwrap();
        let expect = execute(plain, &q).unwrap();
        let got = proxy.execute(&q).unwrap();
        // Compare as multisets: ORDER BY on non-OPE columns may permute.
        let mut a = expect.rows.clone();
        let mut b = got.rows.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "query: {sql}");
    }

    #[test]
    fn equality_queries_transparent() {
        let (plain, mut proxy) = proxy();
        assert_transparent(
            &plain,
            &mut proxy,
            "SELECT objid FROM photoobj WHERE class = 'STAR'",
        );
        assert_transparent(
            &plain,
            &mut proxy,
            "SELECT ra, dec FROM photoobj WHERE objid = 7",
        );
        assert_transparent(
            &plain,
            &mut proxy,
            "SELECT objid FROM photoobj WHERE class IN ('QSO', 'GALAXY')",
        );
    }

    #[test]
    fn range_queries_transparent() {
        let (plain, mut proxy) = proxy();
        assert_transparent(
            &plain,
            &mut proxy,
            "SELECT objid FROM photoobj WHERE ra BETWEEN 100000 AND 250000",
        );
        assert_transparent(
            &plain,
            &mut proxy,
            "SELECT objid, rmag FROM photoobj WHERE rmag > 2000 ORDER BY rmag DESC LIMIT 7",
        );
        assert_transparent(
            &plain,
            &mut proxy,
            "SELECT objid FROM photoobj WHERE NOT ra < 180000",
        );
    }

    #[test]
    fn join_queries_transparent() {
        let (plain, mut proxy) = proxy();
        assert_transparent(
            &plain,
            &mut proxy,
            "SELECT photoobj.objid, specobj.z FROM photoobj \
             JOIN specobj ON photoobj.objid = specobj.bestobjid WHERE specobj.z > 1000000",
        );
    }

    #[test]
    fn group_by_and_count_transparent() {
        let (plain, mut proxy) = proxy();
        assert_transparent(
            &plain,
            &mut proxy,
            "SELECT class, COUNT(*) FROM photoobj WHERE rmag < 2500 GROUP BY class ORDER BY class",
        );
        assert_transparent(&plain, &mut proxy, "SELECT COUNT(*) FROM photoobj");
    }

    #[test]
    fn min_max_transparent() {
        let (plain, mut proxy) = proxy();
        assert_transparent(&plain, &mut proxy, "SELECT MIN(ra), MAX(dec) FROM photoobj");
    }

    #[test]
    fn distinct_transparent() {
        let (plain, mut proxy) = proxy();
        assert_transparent(&plain, &mut proxy, "SELECT DISTINCT class FROM photoobj");
    }

    #[test]
    fn wildcard_transparent() {
        let (plain, mut proxy) = proxy();
        assert_transparent(&plain, &mut proxy, "SELECT * FROM neighbors");
    }

    #[test]
    fn sum_avg_via_hom() {
        let (plain, mut proxy) = proxy();
        let q = parse_query("SELECT SUM(z), AVG(z) FROM specobj WHERE z > 1000").unwrap();
        let expect = execute(&plain, &q).unwrap();
        let got = proxy.execute(&q).unwrap();
        assert_eq!(expect.rows, got.rows);
    }

    #[test]
    fn sum_over_empty_selection_is_null() {
        let (plain, mut proxy) = proxy();
        let q = parse_query("SELECT SUM(z) FROM specobj WHERE z > 6999999 AND z < 2").unwrap();
        let expect = execute(&plain, &q).unwrap();
        let got = proxy.execute(&q).unwrap();
        assert_eq!(expect.rows, got.rows);
        assert_eq!(got.rows[0][0], Value::Null);
    }

    #[test]
    fn whole_workload_is_transparent() {
        let (plain, mut proxy) = proxy();
        let log = LogGenerator::generate(&LogConfig {
            queries: 60,
            seed: 5,
            ..Default::default()
        });
        for q in &log {
            let expect = execute(&plain, q).unwrap();
            let got = proxy.execute(q).unwrap();
            let mut a = expect.rows.clone();
            let mut b = got.rows.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "query: {q}");
        }
    }

    #[test]
    fn encrypted_results_are_deterministic_after_adjustment() {
        let (_, mut proxy) = proxy();
        let q = parse_query("SELECT class FROM photoobj WHERE class = 'STAR'").unwrap();
        let (_, r1) = proxy.execute_encrypted(&q).unwrap();
        let (_, r2) = proxy.execute_encrypted(&q).unwrap();
        assert_eq!(r1.rows, r2.rows);
    }

    #[test]
    fn prob_only_columns_reject_predicates() {
        let cfg = CryptDbConfig::default().with_policy("z", ColumnPolicy::ProbOnly);
        let (_, mut proxy) = proxy_with(cfg);
        let q = parse_query("SELECT specid FROM specobj WHERE z = 5").unwrap();
        assert!(matches!(
            proxy.execute(&q),
            Err(CryptDbError::AdjustmentForbidden(_))
        ));
        let q = parse_query("SELECT specid FROM specobj WHERE z > 5").unwrap();
        assert!(matches!(
            proxy.execute(&q),
            Err(CryptDbError::MissingOnion { .. })
        ));
    }

    #[test]
    fn encrypted_database_never_contains_class_names() {
        let (_, proxy) = proxy();
        for (_, table) in proxy.encrypted_database().tables() {
            for row in table.rows() {
                for cell in row {
                    if let Value::Str(s) = cell {
                        assert!(!s.contains("STAR") && !s.contains("GALAXY"));
                    }
                }
            }
        }
    }
}
