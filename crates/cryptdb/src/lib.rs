//! # dpe-cryptdb — CryptDB-style onion encryption over `dpe-minidb`
//!
//! A re-implementation of the CryptDB \[8\] architecture as far as the
//! paper's Table I relies on it (rows "Query-Result Distance" and
//! "Query-Access-Area Distance" both say *via CryptDB*):
//!
//! * **Onions per column** ([`onion`]): the EQ onion (`RND` wrapping `DET`,
//!   optionally in a JOIN group), the ORD onion (an OPE ciphertext) for
//!   ordered columns, and the HOM onion (Paillier) for columns that appear
//!   in arithmetic aggregates. Columns can be configured to *omit* onions —
//!   the knob the paper's §IV-C uses: for access-area distance,
//!   aggregate-only attributes keep **PROB** security by dropping HOM/ORD
//!   and never adjusting EQ below RND.
//! * **Encrypted schema** ([`schema`]): table and column names are encrypted
//!   with DET, so the provider's catalog leaks only equality of names.
//! * **Data encryption** ([`encryptor`]): a plaintext [`dpe_minidb::Database`]
//!   becomes an encrypted one, with one physical column per onion.
//! * **Query rewriting** ([`rewrite`]): a plaintext query is mapped onto the
//!   encrypted schema — equality predicates to the EQ onion with DET
//!   constants, range predicates and ORDER BY to the ORD onion with OPE
//!   constants, arithmetic aggregates to HOM fetches folded with Paillier.
//! * **Onion adjustment** ([`adjust`]): peeling RND → DET in place when a
//!   query needs server-side equality, exactly like CryptDB's
//!   `UPDATE … SET c = DECRYPT_RND(c)`.
//! * **The proxy** ([`proxy`]): the trusted component holding the master
//!   key; it encrypts, rewrites, executes against the untrusted engine, and
//!   decrypts results. The *untrusted* side is everything a
//!   [`dpe_minidb::Database`] sees.
//!
//! Simplification vs. the real system (documented in DESIGN.md §5): the ORD
//! onion is stored at the OPE layer from the start (CryptDB would peel its
//! RND wrapper on the first range query; every experiment here issues range
//! queries immediately), and the SEARCH onion is omitted (no LIKE in the
//! dialect).

#![forbid(unsafe_code)]

pub mod adjust;
pub mod column;
pub mod encoding;
pub mod encryptor;
pub mod error;
pub mod onion;
pub mod proxy;
pub mod rewrite;
pub mod rewriter;
pub mod schema;

pub use column::{ColumnPolicy, OnionSet};
pub use error::CryptDbError;
pub use onion::{EqLayer, Onion};
pub use proxy::CryptDbProxy;
pub use rewriter::IdentRewriter;
pub use schema::EncryptedSchema;
