//! Error type for the CryptDB layer.

use dpe_minidb::DbError;
use std::fmt;

/// Errors from schema building, rewriting or encrypted execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptDbError {
    /// The plaintext schema has no such table.
    UnknownTable(String),
    /// The plaintext schema has no such column.
    UnknownColumn(String),
    /// The query needs a capability the column's onions do not provide
    /// (e.g. a range predicate on a column without an ORD onion).
    MissingOnion {
        /// Column name.
        column: String,
        /// The capability the query needed.
        needed: &'static str,
    },
    /// The query needs DET exposure but the column is frozen at RND
    /// (`eq_adjustable = false`).
    AdjustmentForbidden(String),
    /// A query shape the rewriter does not support (e.g. grouped SUM).
    UnsupportedQuery(String),
    /// An integer attribute lacks a domain entry (needed for OPE).
    MissingDomain(String),
    /// OPE ciphertext exceeds the i64 storage range — the attribute's
    /// domain is too large for the configured expansion.
    OpeOverflow(String),
    /// Underlying engine error.
    Db(DbError),
    /// A ciphertext failed to decrypt during result post-processing.
    Decrypt(String),
}

impl fmt::Display for CryptDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptDbError::UnknownTable(t) => write!(f, "unknown table {t}"),
            CryptDbError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            CryptDbError::MissingOnion { column, needed } => {
                write!(f, "column {column} lacks the onion needed for {needed}")
            }
            CryptDbError::AdjustmentForbidden(c) => {
                write!(
                    f,
                    "column {c} is frozen at RND; equality exposure forbidden by policy"
                )
            }
            CryptDbError::UnsupportedQuery(m) => write!(f, "unsupported query shape: {m}"),
            CryptDbError::MissingDomain(a) => write!(f, "attribute {a} has no domain"),
            CryptDbError::OpeOverflow(a) => {
                write!(f, "OPE ciphertexts for attribute {a} overflow i64 storage")
            }
            CryptDbError::Db(e) => write!(f, "engine error: {e}"),
            CryptDbError::Decrypt(m) => write!(f, "decryption failed: {m}"),
        }
    }
}

impl std::error::Error for CryptDbError {}

impl From<DbError> for CryptDbError {
    fn from(e: DbError) -> Self {
        CryptDbError::Db(e)
    }
}
