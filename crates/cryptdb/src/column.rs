//! Per-column onion configuration.

use std::collections::BTreeMap;

/// Which onions a column physically carries, and whether its EQ onion may
/// ever be adjusted below RND.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnionSet {
    /// EQ onion present (always true — every column can at least be
    /// fetched).
    pub eq: bool,
    /// EQ onion may be adjusted RND → DET. `false` freezes the column at
    /// PROB security (the paper's aggregate-only attributes).
    pub eq_adjustable: bool,
    /// ORD onion (OPE) present — integer columns used in ranges/ORDER BY.
    pub ord: bool,
    /// HOM onion (Paillier) present — columns summed/averaged.
    pub hom: bool,
    /// JOIN group: columns sharing a group share the DET key, enabling
    /// encrypted equi-joins (the JOIN class of Fig. 1).
    pub join_group: Option<String>,
}

/// High-level per-column policy, lowered to an [`OnionSet`] by the schema
/// builder depending on the column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnPolicy {
    /// CryptDB-as-is: every capability the type supports (EQ adjustable,
    /// ORD + HOM for integers).
    Full,
    /// Everything but HOM.
    NoHom,
    /// PROB only: EQ onion frozen at RND, no ORD, no HOM. The §IV-C
    /// configuration for attributes that occur *only* inside arithmetic
    /// aggregates under access-area distance.
    ProbOnly,
}

/// Whole-database configuration.
#[derive(Debug, Clone)]
pub struct CryptDbConfig {
    /// Default policy for columns not listed in `overrides`.
    pub default_policy: ColumnPolicy,
    /// Per-attribute policy overrides (keyed by unqualified column name).
    pub overrides: BTreeMap<String, ColumnPolicy>,
    /// Join groups: column name → group name.
    pub join_groups: BTreeMap<String, String>,
    /// Paillier prime size in bits (tests use the small preset).
    pub paillier_prime_bits: usize,
    /// Seed for key generation and the RND layers.
    pub seed: u64,
}

impl Default for CryptDbConfig {
    fn default() -> Self {
        CryptDbConfig {
            default_policy: ColumnPolicy::Full,
            overrides: BTreeMap::new(),
            join_groups: BTreeMap::new(),
            paillier_prime_bits: dpe_paillier::TEST_PRIME_BITS,
            seed: 0xC0DE,
        }
    }
}

impl CryptDbConfig {
    /// The policy applying to `column`.
    pub fn policy_for(&self, column: &str) -> ColumnPolicy {
        self.overrides
            .get(column)
            .copied()
            .unwrap_or(self.default_policy)
    }

    /// Registers a join group over the given columns.
    pub fn with_join_group(mut self, group: &str, columns: &[&str]) -> Self {
        for c in columns {
            self.join_groups.insert(c.to_string(), group.to_string());
        }
        self
    }

    /// Sets a per-column override.
    pub fn with_policy(mut self, column: &str, policy: ColumnPolicy) -> Self {
        self.overrides.insert(column.to_string(), policy);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overrides_win() {
        let cfg = CryptDbConfig::default().with_policy("z", ColumnPolicy::ProbOnly);
        assert_eq!(cfg.policy_for("z"), ColumnPolicy::ProbOnly);
        assert_eq!(cfg.policy_for("ra"), ColumnPolicy::Full);
    }

    #[test]
    fn join_group_builder() {
        let cfg = CryptDbConfig::default().with_join_group("obj", &["objid", "bestobjid"]);
        assert_eq!(cfg.join_groups.get("objid").unwrap(), "obj");
        assert_eq!(cfg.join_groups.get("bestobjid").unwrap(), "obj");
        assert!(!cfg.join_groups.contains_key("ra"));
    }
}
