//! The onion model: which onions a column carries and the EQ onion's layer
//! state machine.

use std::fmt;

/// The three onions of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Onion {
    /// Equality onion: RND wrapping DET (possibly JOIN-keyed).
    Eq,
    /// Order onion: OPE.
    Ord,
    /// Aggregate onion: Paillier.
    Hom,
}

impl Onion {
    /// Physical column suffix in the encrypted schema.
    pub fn suffix(self) -> &'static str {
        match self {
            Onion::Eq => "_eq",
            Onion::Ord => "_ord",
            Onion::Hom => "_hom",
        }
    }
}

impl fmt::Display for Onion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Onion::Eq => write!(f, "EQ"),
            Onion::Ord => write!(f, "ORD"),
            Onion::Hom => write!(f, "HOM"),
        }
    }
}

/// Current exposure of the EQ onion.
///
/// Fresh columns sit at [`EqLayer::Rnd`]; a query needing server-side
/// equality triggers adjustment to [`EqLayer::Det`]. Layers only ever move
/// downward (CryptDB never re-wraps).
// The clippy.toml ban on `PartialOrd::partial_cmp` targets NaN-prone
// float sorts; this derive expands to field-wise partial_cmp over
// non-float fields, which cannot hit the NaN pitfall.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EqLayer {
    /// Outer probabilistic layer intact — maximum security, no predicates.
    Rnd,
    /// DET exposed — equality predicates and joins possible.
    Det,
}

impl fmt::Display for EqLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EqLayer::Rnd => write!(f, "RND"),
            EqLayer::Det => write!(f, "DET"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffixes_distinct() {
        let all = [Onion::Eq, Onion::Ord, Onion::Hom];
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i].suffix(), all[j].suffix());
            }
        }
    }

    #[test]
    fn layer_order_models_peeling() {
        // RND is "above" DET; adjustment moves downward only.
        assert!(EqLayer::Rnd < EqLayer::Det);
    }
}
