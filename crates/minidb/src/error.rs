//! Engine error type.

use std::fmt;

/// Errors from catalog operations and query execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Table already exists.
    TableExists(String),
    /// No such table.
    UnknownTable(String),
    /// No such column (possibly ambiguous qualifier).
    UnknownColumn(String),
    /// Column reference matches more than one table in scope.
    AmbiguousColumn(String),
    /// Row arity differs from schema arity.
    ArityMismatch {
        /// Table name.
        table: String,
        /// Schema arity.
        expected: usize,
        /// Provided arity.
        got: usize,
    },
    /// Value type conflicts with column type.
    TypeMismatch {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// Aggregate applied to an incompatible column type.
    AggregateType {
        /// Function name.
        func: &'static str,
        /// Column spelling.
        column: String,
    },
    /// Plain column in SELECT that is neither grouped nor aggregated.
    NotGrouped(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::TableExists(t) => write!(f, "table {t} already exists"),
            DbError::UnknownTable(t) => write!(f, "unknown table {t}"),
            DbError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            DbError::AmbiguousColumn(c) => write!(f, "ambiguous column {c}"),
            DbError::ArityMismatch {
                table,
                expected,
                got,
            } => {
                write!(f, "table {table}: expected {expected} values, got {got}")
            }
            DbError::TypeMismatch { table, column } => {
                write!(f, "table {table}: value does not fit column {column}")
            }
            DbError::AggregateType { func, column } => {
                write!(f, "{func} cannot be applied to column {column}")
            }
            DbError::NotGrouped(c) => {
                write!(f, "column {c} must appear in GROUP BY or an aggregate")
            }
        }
    }
}

impl std::error::Error for DbError {}
