//! # dpe-minidb — a small in-memory relational engine
//!
//! Executes the `dpe-sql` SELECT dialect against in-memory tables: scans,
//! conjunctive/disjunctive filters, inner equi-joins, projection, DISTINCT,
//! GROUP BY with the five aggregates, ORDER BY and LIMIT.
//!
//! Two roles in the reproduction:
//!
//! 1. **Query-result distance** (Table I row 3) needs `result_tuples(Q)` —
//!    the executor computes them for plaintext logs, and again for encrypted
//!    logs against the CryptDB-encrypted database, so *result equivalence*
//!    (Definition 4) can be checked as a literal set equality.
//! 2. The CryptDB layer (`dpe-cryptdb`) runs its rewritten queries on this
//!    engine, playing the untrusted service provider's DBMS.
//!
//! Semantics decisions (documented, deterministic):
//! * Values are [`Value::Int`], [`Value::Str`], [`Value::Null`] — matching
//!   the fixed-point convention of `dpe-sql`.
//! * Three-valued logic is collapsed: comparisons with NULL are `false`
//!   (like SQL's `WHERE` treating UNKNOWN as not-selected).
//! * `result_tuples` is a **set** (Definition 4 operates on tuple sets), but
//!   the executor also exposes bag results for completeness.

#![forbid(unsafe_code)]

pub mod database;
pub mod error;
pub mod exec;
pub mod schema;
pub mod table;
pub mod value;

pub use database::Database;
pub use error::DbError;
pub use exec::{execute, result_tuples, tagged_result_tuples, ResultSet, Row};
pub use schema::{ColumnDef, ColumnType, TableSchema};
pub use table::Table;
pub use value::Value;
