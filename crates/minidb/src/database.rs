//! The catalog: a named collection of tables.

use crate::error::DbError;
use crate::schema::TableSchema;
use crate::table::Table;
use crate::value::Value;
use std::collections::BTreeMap;

/// An in-memory database.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Creates a table from a schema. Errors if the name exists.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<(), DbError> {
        let name = schema.name.clone();
        if self.tables.contains_key(&name) {
            return Err(DbError::TableExists(name));
        }
        self.tables.insert(name, Table::new(schema));
        Ok(())
    }

    /// Inserts a row into `table`.
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<(), DbError> {
        self.tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?
            .insert(row)
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&Table, DbError> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Mutable table lookup (onion adjustment rewrites columns in place).
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Iterates `(name, table)` pairs in name order.
    pub fn tables(&self) -> impl Iterator<Item = (&String, &Table)> {
        self.tables.iter()
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    #[test]
    fn create_insert_lookup() {
        let mut db = Database::new();
        db.create_table(TableSchema::new("t", vec![("a", ColumnType::Int)]))
            .unwrap();
        db.insert("t", vec![Value::Int(1)]).unwrap();
        assert_eq!(db.table("t").unwrap().len(), 1);
        assert_eq!(db.table_count(), 1);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = Database::new();
        db.create_table(TableSchema::new("t", vec![("a", ColumnType::Int)]))
            .unwrap();
        let err = db
            .create_table(TableSchema::new("t", vec![("b", ColumnType::Int)]))
            .unwrap_err();
        assert!(matches!(err, DbError::TableExists(_)));
    }

    #[test]
    fn unknown_table_errors() {
        let db = Database::new();
        assert!(matches!(db.table("nope"), Err(DbError::UnknownTable(_))));
        let mut db = Database::new();
        assert!(matches!(
            db.insert("nope", vec![]),
            Err(DbError::UnknownTable(_))
        ));
    }
}
