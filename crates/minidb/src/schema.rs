//! Table schemas.

use std::fmt;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// String.
    Str,
}

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (lowercase).
    pub name: String,
    /// Declared type.
    pub ty: ColumnType,
}

/// A table schema: an ordered list of columns with unique names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name (lowercase).
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Builds a schema; panics on duplicate column names (a programming
    /// error in workload definitions).
    pub fn new(name: impl Into<String>, columns: Vec<(&str, ColumnType)>) -> Self {
        let name = name.into().to_ascii_lowercase();
        let columns: Vec<ColumnDef> = columns
            .into_iter()
            .map(|(n, ty)| ColumnDef {
                name: n.to_ascii_lowercase(),
                ty,
            })
            .collect();
        for i in 0..columns.len() {
            for j in i + 1..columns.len() {
                assert_ne!(
                    columns[i].name, columns[j].name,
                    "duplicate column {} in table {name}",
                    columns[i].name
                );
            }
        }
        TableSchema { name, columns }
    }

    /// Index of `column`, if present.
    pub fn column_index(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == column)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

impl fmt::Display for TableSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let ty = match c.ty {
                ColumnType::Int => "INT",
                ColumnType::Str => "STR",
            };
            write!(f, "{} {ty}", c.name)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_arity() {
        let s = TableSchema::new("T", vec![("A", ColumnType::Int), ("b", ColumnType::Str)]);
        assert_eq!(s.name, "t");
        assert_eq!(s.column_index("a"), Some(0));
        assert_eq!(s.column_index("b"), Some(1));
        assert_eq!(s.column_index("c"), None);
        assert_eq!(s.arity(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_panic() {
        TableSchema::new("t", vec![("a", ColumnType::Int), ("a", ColumnType::Int)]);
    }

    #[test]
    fn display() {
        let s = TableSchema::new("t", vec![("a", ColumnType::Int)]);
        assert_eq!(s.to_string(), "t(a INT)");
    }
}
