//! Query execution.
//!
//! Pipeline: FROM + JOINs → WHERE filter → (GROUP BY + aggregates | plain
//! projection) → DISTINCT → ORDER BY → LIMIT. All operators are
//! deterministic, which the DPE verification harness relies on: running the
//! same query twice — or its encryption against the encrypted database —
//! must produce comparable results.

use crate::database::Database;
use crate::error::DbError;
use crate::value::Value;
use dpe_sql::{AggArg, AggFunc, ColumnRef, CompareOp, Expr, Query, SelectItem};
use std::cmp::Ordering;
use std::collections::BTreeSet;

/// One output row.
pub type Row = Vec<Value>;

/// Execution result: column headers plus rows in output order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// The rows as a set — `result_tuples(Q)` of Definition 4.
    pub fn tuple_set(&self) -> BTreeSet<Row> {
        self.rows.iter().cloned().collect()
    }

    /// The rows as a set of *provenance-tagged* tuples: each tuple carries
    /// the query's output schema (the header).
    ///
    /// Two tuples are "the same result tuple" only when they agree on both
    /// the output columns and the values. This matters for distance
    /// computations over heterogeneous logs: a `COUNT(*)` row `(3)` is not
    /// the same tuple as a data row `(objid = 3)`, even though their raw
    /// value vectors collide — and such accidental collisions are exactly
    /// what breaks distance preservation, because encryption maps data
    /// values consistently but cannot make a plaintext count collide with a
    /// ciphertext objid. See `dpe-distance::result_distance`.
    pub fn tagged_tuple_set(&self) -> BTreeSet<(Vec<String>, Row)> {
        self.rows
            .iter()
            .map(|r| (self.columns.clone(), r.clone()))
            .collect()
    }

    /// The named output column as `i64`s, in row order. Errors on a column
    /// absent from the header ([`DbError::UnknownColumn`]) or a non-integer
    /// cell ([`DbError::TypeMismatch`]) — the typed accessor differential
    /// harnesses use to compare against another engine's integer results.
    pub fn int_column(&self, name: &str) -> Result<Vec<i64>, DbError> {
        let idx = self
            .columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| DbError::UnknownColumn(name.to_string()))?;
        self.rows
            .iter()
            .map(|row| match &row[idx] {
                Value::Int(v) => Ok(*v),
                _ => Err(DbError::TypeMismatch {
                    table: "<result>".into(),
                    column: name.to_string(),
                }),
            })
            .collect()
    }
}

/// Executes `query` against `db`.
pub fn execute(db: &Database, query: &Query) -> Result<ResultSet, DbError> {
    let scope = build_scope(db, query)?;
    let joined = join_rows(db, query, &scope)?;

    let filtered: Vec<&Row> = match &query.where_clause {
        Some(pred) => {
            let mut kept = Vec::new();
            for row in &joined {
                if eval_predicate(pred, row, &scope)? {
                    kept.push(row);
                }
            }
            kept
        }
        None => joined.iter().collect(),
    };

    let has_aggregate = query
        .select
        .iter()
        .any(|s| matches!(s, SelectItem::Aggregate { .. }));

    let (columns, mut rows) = if has_aggregate || !query.group_by.is_empty() {
        execute_grouped(query, &filtered, &scope)?
    } else {
        execute_plain(query, &filtered, &scope)?
    };

    if query.distinct {
        let mut seen = BTreeSet::new();
        rows.retain(|r| seen.insert(r.clone()));
    }

    if let Some(limit) = query.limit {
        rows.truncate(limit as usize);
    }

    Ok(ResultSet { columns, rows })
}

/// `result_tuples(Q)` — the characteristic of result equivalence
/// (Definition 4): the *set* of result tuples.
pub fn result_tuples(db: &Database, query: &Query) -> Result<BTreeSet<Row>, DbError> {
    Ok(execute(db, query)?.tuple_set())
}

/// Provenance-tagged `result_tuples(Q)`: tuples paired with the query's
/// output schema. The comparison semantics the result-distance measure
/// needs on heterogeneous logs — see [`ResultSet::tagged_tuple_set`].
pub fn tagged_result_tuples(
    db: &Database,
    query: &Query,
) -> Result<BTreeSet<(Vec<String>, Row)>, DbError> {
    Ok(execute(db, query)?.tagged_tuple_set())
}

/// Name resolution scope: the tables joined into the working relation, with
/// each table's column offset in the combined row.
struct Scope {
    entries: Vec<ScopeEntry>,
    width: usize,
}

struct ScopeEntry {
    table: String,
    columns: Vec<String>,
    offset: usize,
}

impl Scope {
    /// Resolves a column reference to its index in the combined row.
    fn resolve(&self, col: &ColumnRef) -> Result<usize, DbError> {
        match &col.table {
            Some(table) => {
                let entry = self
                    .entries
                    .iter()
                    .find(|e| &e.table == table)
                    .ok_or_else(|| DbError::UnknownTable(table.clone()))?;
                let idx = entry
                    .columns
                    .iter()
                    .position(|c| c == &col.column)
                    .ok_or_else(|| DbError::UnknownColumn(col.to_string()))?;
                Ok(entry.offset + idx)
            }
            None => {
                let mut found = None;
                for entry in &self.entries {
                    if let Some(idx) = entry.columns.iter().position(|c| c == &col.column) {
                        if found.is_some() {
                            return Err(DbError::AmbiguousColumn(col.column.clone()));
                        }
                        found = Some(entry.offset + idx);
                    }
                }
                found.ok_or_else(|| DbError::UnknownColumn(col.column.clone()))
            }
        }
    }

    /// All output column names for `*`, in scope order, qualified when the
    /// scope has more than one table.
    fn wildcard_columns(&self) -> Vec<(String, usize)> {
        let qualify = self.entries.len() > 1;
        let mut out = Vec::with_capacity(self.width);
        for entry in &self.entries {
            for (i, c) in entry.columns.iter().enumerate() {
                let name = if qualify {
                    format!("{}.{c}", entry.table)
                } else {
                    c.clone()
                };
                out.push((name, entry.offset + i));
            }
        }
        out
    }
}

fn build_scope(db: &Database, query: &Query) -> Result<Scope, DbError> {
    let mut entries = Vec::new();
    let mut offset = 0;
    for table_name in
        std::iter::once(&query.from.name).chain(query.joins.iter().map(|j| &j.table.name))
    {
        let table = db.table(table_name)?;
        let columns: Vec<String> = table
            .schema()
            .columns
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let width = columns.len();
        entries.push(ScopeEntry {
            table: table_name.clone(),
            columns,
            offset,
        });
        offset += width;
    }
    Ok(Scope {
        entries,
        width: offset,
    })
}

/// Materializes the working relation: FROM rows folded through the inner
/// equi-joins (hash join on the ON columns).
fn join_rows(db: &Database, query: &Query, scope: &Scope) -> Result<Vec<Row>, DbError> {
    let base = db.table(&query.from.name)?;
    let mut rows: Vec<Row> = base.rows().to_vec();

    for (join_idx, join) in query.joins.iter().enumerate() {
        let right_table = db.table(&join.table.name)?;
        // Scope for resolution includes tables up to and including this join.
        let partial = Scope {
            entries: scope
                .entries
                .iter()
                .take(join_idx + 2)
                .map(|e| ScopeEntry {
                    table: e.table.clone(),
                    columns: e.columns.clone(),
                    offset: e.offset,
                })
                .collect(),
            width: scope.entries[join_idx + 1].offset + right_table.schema().arity(),
        };
        let left_idx = partial.resolve(&join.left)?;
        let right_idx = partial.resolve(&join.right)?;
        let right_offset = scope.entries[join_idx + 1].offset;

        // Decide which resolved index lives in the accumulated left rows and
        // which in the joined table.
        let (acc_idx, new_idx) = if left_idx < right_offset {
            (left_idx, right_idx - right_offset)
        } else {
            (right_idx, left_idx - right_offset)
        };

        let mut index: std::collections::HashMap<&Value, Vec<&Row>> =
            std::collections::HashMap::new();
        for r in right_table.rows() {
            if !r[new_idx].is_null() {
                index.entry(&r[new_idx]).or_default().push(r);
            }
        }
        let mut next = Vec::new();
        for left_row in &rows {
            let key = &left_row[acc_idx];
            if key.is_null() {
                continue;
            }
            if let Some(matches) = index.get(key) {
                for m in matches {
                    let mut combined = left_row.clone();
                    combined.extend(m.iter().cloned());
                    next.push(combined);
                }
            }
        }
        rows = next;
    }
    Ok(rows)
}

/// WHERE evaluation with UNKNOWN collapsed to `false`.
fn eval_predicate(expr: &Expr, row: &Row, scope: &Scope) -> Result<bool, DbError> {
    Ok(match expr {
        Expr::Comparison { col, op, value } => {
            let left = &row[scope.resolve(col)?];
            let right = Value::from_literal(value);
            match left.sql_cmp(&right) {
                None => false,
                Some(ord) => match op {
                    CompareOp::Eq => ord == Ordering::Equal,
                    CompareOp::Ne => ord != Ordering::Equal,
                    CompareOp::Lt => ord == Ordering::Less,
                    CompareOp::Le => ord != Ordering::Greater,
                    CompareOp::Gt => ord == Ordering::Greater,
                    CompareOp::Ge => ord != Ordering::Less,
                },
            }
        }
        Expr::ColumnEq { left, right } => {
            let l = &row[scope.resolve(left)?];
            let r = &row[scope.resolve(right)?];
            l.sql_cmp(r) == Some(Ordering::Equal)
        }
        Expr::Between { col, low, high } => {
            let v = &row[scope.resolve(col)?];
            let lo = Value::from_literal(low);
            let hi = Value::from_literal(high);
            matches!(v.sql_cmp(&lo), Some(Ordering::Greater | Ordering::Equal))
                && matches!(v.sql_cmp(&hi), Some(Ordering::Less | Ordering::Equal))
        }
        Expr::InList { col, list } => {
            let v = &row[scope.resolve(col)?];
            list.iter()
                .any(|lit| v.sql_cmp(&Value::from_literal(lit)) == Some(Ordering::Equal))
        }
        Expr::IsNull { col, negated } => {
            let is_null = row[scope.resolve(col)?].is_null();
            is_null != *negated
        }
        Expr::And(a, b) => eval_predicate(a, row, scope)? && eval_predicate(b, row, scope)?,
        Expr::Or(a, b) => eval_predicate(a, row, scope)? || eval_predicate(b, row, scope)?,
        Expr::Not(inner) => !eval_predicate(inner, row, scope)?,
    })
}

fn execute_plain(
    query: &Query,
    rows: &[&Row],
    scope: &Scope,
) -> Result<(Vec<String>, Vec<Row>), DbError> {
    // ORDER BY happens on the pre-projection rows so sort keys need not be
    // projected.
    let mut ordered: Vec<&Row> = rows.to_vec();
    if !query.order_by.is_empty() {
        let keys: Vec<(usize, bool)> = query
            .order_by
            .iter()
            .map(|o| Ok((scope.resolve(&o.col)?, o.desc)))
            .collect::<Result<_, DbError>>()?;
        ordered.sort_by(|a, b| compare_by_keys(a, b, &keys));
    }

    // Projection plan: output name + source index, wildcards expanded.
    let mut plan: Vec<(String, usize)> = Vec::new();
    for item in &query.select {
        match item {
            SelectItem::Wildcard => plan.extend(scope.wildcard_columns()),
            SelectItem::Column(c) => plan.push((c.to_string(), scope.resolve(c)?)),
            SelectItem::Aggregate { .. } => unreachable!("aggregates take the grouped path"),
        }
    }

    let columns = plan.iter().map(|(n, _)| n.clone()).collect();
    let out = ordered
        .iter()
        .map(|row| plan.iter().map(|(_, idx)| row[*idx].clone()).collect())
        .collect();
    Ok((columns, out))
}

fn execute_grouped(
    query: &Query,
    rows: &[&Row],
    scope: &Scope,
) -> Result<(Vec<String>, Vec<Row>), DbError> {
    let key_indices: Vec<usize> = query
        .group_by
        .iter()
        .map(|c| scope.resolve(c))
        .collect::<Result<_, _>>()?;

    // BTreeMap keys give deterministic group order before ORDER BY.
    let mut groups: std::collections::BTreeMap<Vec<Value>, Vec<&Row>> = Default::default();
    if key_indices.is_empty() {
        // Global aggregation: exactly one group, even over zero rows.
        groups.insert(Vec::new(), rows.to_vec());
    } else {
        for row in rows {
            let key: Vec<Value> = key_indices.iter().map(|&i| row[i].clone()).collect();
            groups.entry(key).or_default().push(row);
        }
    }

    // Output plan per select item.
    enum Output {
        GroupKey(usize),
        Agg(AggFunc, Option<usize>, String),
    }
    let mut columns = Vec::new();
    let mut plan = Vec::new();
    for item in &query.select {
        match item {
            SelectItem::Wildcard => {
                return Err(DbError::NotGrouped("*".to_string()));
            }
            SelectItem::Column(c) => {
                let idx = scope.resolve(c)?;
                let key_pos = key_indices
                    .iter()
                    .position(|&k| k == idx)
                    .ok_or_else(|| DbError::NotGrouped(c.to_string()))?;
                columns.push(c.to_string());
                plan.push(Output::GroupKey(key_pos));
            }
            SelectItem::Aggregate { func, arg } => {
                let (idx, spelling) = match arg {
                    AggArg::Star => (None, format!("{func}(*)")),
                    AggArg::Column(c) => (Some(scope.resolve(c)?), format!("{func}({c})")),
                };
                columns.push(spelling.clone());
                plan.push(Output::Agg(*func, idx, spelling));
            }
        }
    }

    let mut out_rows = Vec::with_capacity(groups.len());
    for (key, members) in &groups {
        let mut row = Vec::with_capacity(plan.len());
        for output in &plan {
            match output {
                Output::GroupKey(pos) => row.push(key[*pos].clone()),
                Output::Agg(func, idx, spelling) => {
                    row.push(eval_aggregate(*func, *idx, members, spelling)?)
                }
            }
        }
        out_rows.push(row);
    }

    // ORDER BY on grouped output: resolve against the group-by columns.
    if !query.order_by.is_empty() {
        let mut keys = Vec::new();
        for o in &query.order_by {
            let idx = scope.resolve(&o.col)?;
            let key_pos = key_indices
                .iter()
                .position(|&k| k == idx)
                .ok_or_else(|| DbError::NotGrouped(o.col.to_string()))?;
            // Find which output slot carries this group key, if projected;
            // otherwise sort on the hidden key by re-deriving it.
            keys.push((key_pos, o.desc));
        }
        let mut paired: Vec<(Vec<Value>, Row)> = groups.keys().cloned().zip(out_rows).collect();
        paired.sort_by(|(ka, _), (kb, _)| {
            for &(pos, desc) in &keys {
                let ord = null_first_cmp(&ka[pos], &kb[pos]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        out_rows = paired.into_iter().map(|(_, r)| r).collect();
    }

    Ok((columns, out_rows))
}

fn eval_aggregate(
    func: AggFunc,
    idx: Option<usize>,
    members: &[&Row],
    spelling: &str,
) -> Result<Value, DbError> {
    match func {
        AggFunc::Count => match idx {
            None => Ok(Value::Int(members.len() as i64)),
            Some(i) => Ok(Value::Int(
                members.iter().filter(|r| !r[i].is_null()).count() as i64,
            )),
        },
        AggFunc::Sum | AggFunc::Avg => {
            let i = idx.ok_or(DbError::AggregateType {
                func: func.name(),
                column: "*".into(),
            })?;
            let mut sum: i64 = 0;
            let mut count: i64 = 0;
            for r in members {
                match &r[i] {
                    Value::Null => {}
                    Value::Int(v) => {
                        sum = sum.wrapping_add(*v);
                        count += 1;
                    }
                    Value::Str(_) => {
                        return Err(DbError::AggregateType {
                            func: func.name(),
                            column: spelling.to_string(),
                        })
                    }
                }
            }
            if count == 0 {
                return Ok(Value::Null);
            }
            Ok(match func {
                AggFunc::Sum => Value::Int(sum),
                // Integer AVG: floor division, deterministic.
                _ => Value::Int(sum.div_euclid(count)),
            })
        }
        AggFunc::Min | AggFunc::Max => {
            let i = idx.ok_or(DbError::AggregateType {
                func: func.name(),
                column: "*".into(),
            })?;
            let mut best: Option<&Value> = None;
            for r in members {
                if r[i].is_null() {
                    continue;
                }
                best = Some(match best {
                    None => &r[i],
                    Some(b) => {
                        let take_new = match func {
                            AggFunc::Min => r[i] < *b,
                            _ => r[i] > *b,
                        };
                        if take_new {
                            &r[i]
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.cloned().unwrap_or(Value::Null))
        }
    }
}

fn compare_by_keys(a: &Row, b: &Row, keys: &[(usize, bool)]) -> Ordering {
    for &(idx, desc) in keys {
        let ord = null_first_cmp(&a[idx], &b[idx]);
        let ord = if desc { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Total order for sorting: NULL sorts before everything.
fn null_first_cmp(a: &Value, b: &Value) -> Ordering {
    match (a.is_null(), b.is_null()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.cmp(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, TableSchema};
    use dpe_sql::parse_query;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "photoobj",
            vec![
                ("objid", ColumnType::Int),
                ("ra", ColumnType::Int),
                ("dec", ColumnType::Int),
                ("class", ColumnType::Str),
            ],
        ))
        .unwrap();
        let rows = [
            (1, 100, -5, "STAR"),
            (2, 150, 10, "GALAXY"),
            (3, 200, 20, "STAR"),
            (4, 250, -15, "QSO"),
            (5, 300, 0, "GALAXY"),
        ];
        for (id, ra, dec, class) in rows {
            db.insert(
                "photoobj",
                vec![
                    Value::Int(id),
                    Value::Int(ra),
                    Value::Int(dec),
                    Value::Str(class.into()),
                ],
            )
            .unwrap();
        }
        db.create_table(TableSchema::new(
            "specobj",
            vec![
                ("specid", ColumnType::Int),
                ("bestobjid", ColumnType::Int),
                ("z", ColumnType::Int),
            ],
        ))
        .unwrap();
        for (sid, oid, z) in [(10, 1, 50), (11, 3, 70), (12, 3, 75), (13, 9, 99)] {
            db.insert(
                "specobj",
                vec![Value::Int(sid), Value::Int(oid), Value::Int(z)],
            )
            .unwrap();
        }
        db
    }

    fn run(db: &Database, sql: &str) -> ResultSet {
        execute(db, &parse_query(sql).unwrap()).unwrap_or_else(|e| panic!("{sql}: {e}"))
    }

    #[test]
    fn full_scan() {
        let db = sample_db();
        let rs = run(&db, "SELECT * FROM photoobj");
        assert_eq!(rs.rows.len(), 5);
        assert_eq!(rs.columns, vec!["objid", "ra", "dec", "class"]);
    }

    #[test]
    fn filter_and_project() {
        let db = sample_db();
        let rs = run(
            &db,
            "SELECT objid FROM photoobj WHERE ra > 150 AND class = 'STAR'",
        );
        assert_eq!(rs.rows, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn between_in_or() {
        let db = sample_db();
        let rs = run(
            &db,
            "SELECT objid FROM photoobj WHERE ra BETWEEN 100 AND 200 OR class IN ('QSO')",
        );
        assert_eq!(rs.rows.len(), 4);
    }

    #[test]
    fn order_by_with_desc_and_limit() {
        let db = sample_db();
        let rs = run(&db, "SELECT objid FROM photoobj ORDER BY dec DESC LIMIT 2");
        assert_eq!(rs.rows, vec![vec![Value::Int(3)], vec![Value::Int(2)]]);
    }

    #[test]
    fn order_by_column_not_projected() {
        let db = sample_db();
        let rs = run(&db, "SELECT class FROM photoobj ORDER BY ra DESC LIMIT 1");
        assert_eq!(rs.rows, vec![vec![Value::Str("GALAXY".into())]]);
    }

    #[test]
    fn distinct_collapses() {
        let db = sample_db();
        let rs = run(&db, "SELECT DISTINCT class FROM photoobj");
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn explicit_join() {
        let db = sample_db();
        let rs = run(
            &db,
            "SELECT photoobj.objid, specobj.z FROM photoobj JOIN specobj ON photoobj.objid = specobj.bestobjid",
        );
        // objid 1 matches once, objid 3 twice, specid 13 dangles.
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn join_with_filter() {
        let db = sample_db();
        let rs = run(
            &db,
            "SELECT specobj.z FROM photoobj JOIN specobj ON photoobj.objid = specobj.bestobjid WHERE photoobj.class = 'STAR' AND specobj.z > 60",
        );
        assert_eq!(rs.rows, vec![vec![Value::Int(70)], vec![Value::Int(75)]]);
    }

    #[test]
    fn global_aggregates() {
        let db = sample_db();
        let rs = run(
            &db,
            "SELECT COUNT(*), SUM(ra), MIN(dec), MAX(dec), AVG(ra) FROM photoobj",
        );
        assert_eq!(
            rs.rows,
            vec![vec![
                Value::Int(5),
                Value::Int(1000),
                Value::Int(-15),
                Value::Int(20),
                Value::Int(200),
            ]]
        );
    }

    #[test]
    fn aggregates_over_empty_input() {
        let db = sample_db();
        let rs = run(
            &db,
            "SELECT COUNT(*), SUM(ra) FROM photoobj WHERE ra > 9999",
        );
        assert_eq!(rs.rows, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn group_by_with_having_like_filter_in_where() {
        let db = sample_db();
        let rs = run(
            &db,
            "SELECT class, COUNT(*) FROM photoobj GROUP BY class ORDER BY class",
        );
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::Str("GALAXY".into()), Value::Int(2)],
                vec![Value::Str("QSO".into()), Value::Int(1)],
                vec![Value::Str("STAR".into()), Value::Int(2)],
            ]
        );
    }

    #[test]
    fn ungrouped_column_rejected() {
        let db = sample_db();
        let err = execute(
            &db,
            &parse_query("SELECT ra, COUNT(*) FROM photoobj").unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, DbError::NotGrouped(_)));
    }

    #[test]
    fn unknown_column_and_table() {
        let db = sample_db();
        assert!(matches!(
            execute(&db, &parse_query("SELECT nope FROM photoobj").unwrap()),
            Err(DbError::UnknownColumn(_))
        ));
        assert!(matches!(
            execute(&db, &parse_query("SELECT ra FROM nope").unwrap()),
            Err(DbError::UnknownTable(_))
        ));
    }

    #[test]
    fn nulls_filtered_by_comparisons() {
        let mut db = Database::new();
        db.create_table(TableSchema::new("t", vec![("a", ColumnType::Int)]))
            .unwrap();
        db.insert("t", vec![Value::Int(1)]).unwrap();
        db.insert("t", vec![Value::Null]).unwrap();
        let rs = run(&db, "SELECT a FROM t WHERE a >= 0");
        assert_eq!(rs.rows.len(), 1);
        let rs = run(&db, "SELECT a FROM t WHERE a IS NULL");
        assert_eq!(rs.rows, vec![vec![Value::Null]]);
        let rs = run(&db, "SELECT a FROM t WHERE a IS NOT NULL");
        assert_eq!(rs.rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn count_column_skips_nulls() {
        let mut db = Database::new();
        db.create_table(TableSchema::new("t", vec![("a", ColumnType::Int)]))
            .unwrap();
        db.insert("t", vec![Value::Int(1)]).unwrap();
        db.insert("t", vec![Value::Null]).unwrap();
        let rs = run(&db, "SELECT COUNT(a), COUNT(*) FROM t");
        assert_eq!(rs.rows, vec![vec![Value::Int(1), Value::Int(2)]]);
    }

    #[test]
    fn result_tuples_is_a_set() {
        let db = sample_db();
        let q = parse_query("SELECT class FROM photoobj").unwrap();
        let tuples = result_tuples(&db, &q).unwrap();
        assert_eq!(tuples.len(), 3); // 5 rows, 3 distinct classes
    }

    #[test]
    fn not_predicate() {
        let db = sample_db();
        let rs = run(
            &db,
            "SELECT objid FROM photoobj WHERE NOT class = 'STAR' ORDER BY objid",
        );
        assert_eq!(rs.rows.len(), 3);
    }
}
