//! Row storage.

use crate::error::DbError;
use crate::schema::{ColumnType, TableSchema};
use crate::value::Value;

/// An in-memory table: a schema plus row-major tuples.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Inserts one row, checking arity and types (NULL fits any column).
    pub fn insert(&mut self, row: Vec<Value>) -> Result<(), DbError> {
        if row.len() != self.schema.arity() {
            return Err(DbError::ArityMismatch {
                table: self.schema.name.clone(),
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        for (value, def) in row.iter().zip(&self.schema.columns) {
            let ok = matches!(
                (value, def.ty),
                (Value::Null, _)
                    | (Value::Int(_), ColumnType::Int)
                    | (Value::Str(_), ColumnType::Str)
            );
            if !ok {
                return Err(DbError::TypeMismatch {
                    table: self.schema.name.clone(),
                    column: def.name.clone(),
                });
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Rewrites one column in place with `f` (used by CryptDB-style onion
    /// adjustment, which peels an encryption layer off a whole column).
    /// Returns an error for unknown columns. `f` must preserve the column
    /// type.
    pub fn map_column(
        &mut self,
        column: &str,
        mut f: impl FnMut(&Value) -> Value,
    ) -> Result<(), DbError> {
        let idx = self
            .schema
            .column_index(column)
            .ok_or_else(|| DbError::UnknownColumn(column.to_string()))?;
        for row in &mut self.rows {
            row[idx] = f(&row[idx]);
        }
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new("t", vec![("a", ColumnType::Int), ("s", ColumnType::Str)])
    }

    #[test]
    fn insert_and_read() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Int(1), Value::Str("x".into())])
            .unwrap();
        t.insert(vec![Value::Null, Value::Null]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0][0], Value::Int(1));
    }

    #[test]
    fn arity_checked() {
        let mut t = Table::new(schema());
        let err = t.insert(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(
            err,
            DbError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn map_column_rewrites_in_place() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Int(1), Value::Str("x".into())])
            .unwrap();
        t.insert(vec![Value::Int(2), Value::Str("y".into())])
            .unwrap();
        t.map_column("a", |v| match v {
            Value::Int(i) => Value::Int(i * 10),
            other => other.clone(),
        })
        .unwrap();
        assert_eq!(t.rows()[0][0], Value::Int(10));
        assert_eq!(t.rows()[1][0], Value::Int(20));
        assert!(t.map_column("missing", |v| v.clone()).is_err());
    }

    #[test]
    fn types_checked() {
        let mut t = Table::new(schema());
        let err = t
            .insert(vec![Value::Str("no".into()), Value::Str("x".into())])
            .unwrap_err();
        assert!(matches!(err, DbError::TypeMismatch { .. }));
    }
}
