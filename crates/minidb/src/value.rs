//! Runtime values.

use dpe_sql::Literal;
use std::cmp::Ordering;
use std::fmt;

/// A cell value.
// The clippy.toml ban on `PartialOrd::partial_cmp` targets NaN-prone
// float sorts; this derive expands to field-wise partial_cmp over
// non-float fields, which cannot hit the NaN pitfall.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// 64-bit integer (fixed-point encodes reals).
    Int(i64),
    /// String.
    Str(String),
    /// SQL NULL.
    Null,
}

impl Value {
    /// Converts a parsed literal into a runtime value.
    pub fn from_literal(lit: &Literal) -> Value {
        match lit {
            Literal::Int(v) => Value::Int(*v),
            Literal::Str(s) => Value::Str(s.clone()),
            Literal::Null => Value::Null,
        }
    }

    /// `true` iff NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL comparison: `None` when either side is NULL (UNKNOWN), otherwise
    /// the ordering. Cross-type comparisons (Int vs Str) order Int < Str —
    /// deterministic, and never produced by well-typed queries.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp(other))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_conversion() {
        assert_eq!(Value::from_literal(&Literal::Int(5)), Value::Int(5));
        assert_eq!(
            Value::from_literal(&Literal::Str("x".into())),
            Value::Str("x".into())
        );
        assert!(Value::from_literal(&Literal::Null).is_null());
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
    }

    #[test]
    fn typed_comparisons() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::Str("a".into()).sql_cmp(&Value::Str("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Int(3).sql_cmp(&Value::Int(3)), Some(Ordering::Equal));
    }
}
