//! Attack bookkeeping.

use std::fmt;

/// Result of an attack run: how much plaintext was recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackOutcome {
    /// Correctly recovered items.
    pub recovered: usize,
    /// Total items attacked.
    pub total: usize,
}

impl AttackOutcome {
    /// Recovery rate ∈ [0, 1]; zero for empty inputs.
    pub fn success_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.recovered as f64 / self.total as f64
        }
    }
}

impl fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} ({:.1}%)",
            self.recovered,
            self.total,
            self.success_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        assert_eq!(
            AttackOutcome {
                recovered: 3,
                total: 4
            }
            .success_rate(),
            0.75
        );
        assert_eq!(
            AttackOutcome {
                recovered: 0,
                total: 0
            }
            .success_rate(),
            0.0
        );
        assert_eq!(
            AttackOutcome {
                recovered: 1,
                total: 2
            }
            .to_string(),
            "1/2 (50.0%)"
        );
    }
}
