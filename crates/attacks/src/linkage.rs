//! Cross-column linkage against JOIN groups.
//!
//! Sharing one DET key across join-compatible columns (the JOIN usage mode)
//! lets the provider — and any passive observer — match values *across*
//! columns: `Enc_A(v) == Enc_B(v)`. With per-column keys this linkage is
//! impossible. The attack quantifies the leak: the fraction of truly shared
//! values an observer links by ciphertext equality.

use crate::metrics::AttackOutcome;
use std::collections::BTreeSet;

/// Measures cross-column linkage.
///
/// * `column_a`, `column_b` — ciphertext columns (opaque strings);
/// * `truth_a`, `truth_b` — aligned true plaintexts (evaluation only).
///
/// Recovery = number of plaintext values present in both columns whose
/// ciphertexts also match across columns.
pub fn join_linkage(
    column_a: &[String],
    column_b: &[String],
    truth_a: &[i64],
    truth_b: &[i64],
) -> AttackOutcome {
    assert_eq!(column_a.len(), truth_a.len());
    assert_eq!(column_b.len(), truth_b.len());

    let plain_a: BTreeSet<i64> = truth_a.iter().copied().collect();
    let plain_b: BTreeSet<i64> = truth_b.iter().copied().collect();
    let truly_shared: Vec<i64> = plain_a.intersection(&plain_b).copied().collect();

    let ct_b: BTreeSet<&String> = column_b.iter().collect();
    let mut linked = 0;
    for &v in &truly_shared {
        // Find v's ciphertext in column A and test membership in column B.
        let found = truth_a
            .iter()
            .zip(column_a)
            .find(|(t, _)| **t == v)
            .map(|(_, ct)| ct_b.contains(ct))
            .unwrap_or(false);
        if found {
            linked += 1;
        }
    }
    AttackOutcome {
        recovered: linked,
        total: truly_shared.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_crypto::kdf::SlotLabel;
    use dpe_crypto::scheme::SymmetricScheme;
    use dpe_crypto::DetScheme;
    use dpe_crypto::{JoinGroup, MasterKey};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn master() -> MasterKey {
        MasterKey::from_bytes([55; 32])
    }

    fn encrypt_col<S: SymmetricScheme>(scheme: &S, values: &[i64]) -> Vec<String> {
        let mut rng = StdRng::seed_from_u64(1);
        values
            .iter()
            .map(|v| {
                let ct = scheme.encrypt(&v.to_be_bytes(), &mut rng);
                ct.to_hex()
            })
            .collect()
    }

    #[test]
    fn join_group_links_everything() {
        let group = JoinGroup::new(&master(), "objid");
        let a = vec![1i64, 2, 3, 4];
        let b = vec![3i64, 4, 5];
        let col_a = encrypt_col(group.scheme(), &a);
        let col_b = encrypt_col(group.scheme(), &b);
        let outcome = join_linkage(&col_a, &col_b, &a, &b);
        assert_eq!(outcome.success_rate(), 1.0);
        assert_eq!(outcome.total, 2); // {3, 4}
    }

    #[test]
    fn per_column_det_links_nothing() {
        let det_a = DetScheme::new(&SlotLabel::Constant("col_a").derive(&master()));
        let det_b = DetScheme::new(&SlotLabel::Constant("col_b").derive(&master()));
        let a = vec![1i64, 2, 3, 4];
        let b = vec![3i64, 4, 5];
        let col_a = encrypt_col(&det_a, &a);
        let col_b = encrypt_col(&det_b, &b);
        let outcome = join_linkage(&col_a, &col_b, &a, &b);
        assert_eq!(outcome.recovered, 0);
        assert_eq!(outcome.total, 2);
    }

    #[test]
    fn disjoint_columns_nothing_to_link() {
        let group = JoinGroup::new(&master(), "objid");
        let a = vec![1i64, 2];
        let b = vec![3i64, 4];
        let outcome = join_linkage(
            &encrypt_col(group.scheme(), &a),
            &encrypt_col(group.scheme(), &b),
            &a,
            &b,
        );
        assert_eq!(outcome.total, 0);
        assert_eq!(outcome.success_rate(), 0.0);
    }
}
