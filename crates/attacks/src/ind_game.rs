//! Distinguishing games: the ciphertext-only experiments separating the
//! taxonomy rows.
//!
//! * **Equality game** — the adversary picks `m0 ≠ m1`, gets `Enc(m0)` as a
//!   reference and a challenge `Enc(m_b)`, and guesses `b` by ciphertext
//!   equality. Advantage ≈ 1 against DET-family schemes, ≈ 0 against
//!   PROB/HOM.
//! * **Order game** — the adversary picks a pivot `m` and two fresh values
//!   `m⁻ < m < m⁺`, gets the reference `Enc(m)` and a challenge `Enc(m_b)`
//!   with `b ∈ {−, +}`, and guesses by comparing the challenge against the
//!   reference. The challenge values are *distinct from the reference* so a
//!   deterministic scheme cannot win through equality alone — order must
//!   actually be preserved. Advantage = 1 against OPE (monotonicity makes
//!   the comparison exact), ≈ 0 against DET and PROB.
//!
//! "Advantage" here is `2·|Pr[win] − 1/2|`, estimated over `trials` runs.

use dpe_crypto::scheme::SymmetricScheme;
use rand::Rng;

/// Empirical equality-distinguishing advantage of `scheme`.
pub fn equality_advantage<S: SymmetricScheme>(
    scheme: &S,
    trials: usize,
    rng: &mut impl Rng,
) -> f64 {
    let mut wins = 0usize;
    for t in 0..trials {
        let m0 = format!("value-{t}-a");
        let m1 = format!("value-{t}-b");
        let reference = scheme.encrypt(m0.as_bytes(), rng);
        let b: bool = rng.gen();
        let challenge = scheme.encrypt(if b { m1.as_bytes() } else { m0.as_bytes() }, rng);
        // Guess b = 0 (same message) iff ciphertexts match.
        let guess_b = challenge != reference;
        if guess_b == b {
            wins += 1;
        }
    }
    advantage(wins, trials)
}

/// Empirical order-distinguishing advantage of a numeric scheme given as a
/// closure `encrypt(v) -> u128` (OPE has a value-typed interface).
pub fn order_advantage(
    mut encrypt: impl FnMut(u64) -> u128,
    trials: usize,
    rng: &mut impl Rng,
) -> f64 {
    let mut wins = 0usize;
    for t in 0..trials {
        let base = 1000 + (t as u64) * 17;
        let pivot = base + 250;
        let c_pivot = encrypt(pivot);
        let b: bool = rng.gen();
        // The challenge value straddles the pivot and never equals it, so
        // equality leakage is useless; only preserved order can win.
        let challenge = encrypt(if b { base + 500 } else { base });
        let guess_high = challenge > c_pivot;
        if guess_high == b {
            wins += 1;
        }
    }
    advantage(wins, trials)
}

fn advantage(wins: usize, trials: usize) -> f64 {
    if trials == 0 {
        return 0.0;
    }
    (2.0 * (wins as f64 / trials as f64 - 0.5)).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_crypto::{DetScheme, ProbScheme, SymmetricKey};
    use dpe_ope::{OpeDomain, OpeScheme};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TRIALS: usize = 200;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    #[test]
    fn det_loses_equality_game() {
        let scheme = DetScheme::new(&SymmetricKey::from_bytes([1; 32]));
        let adv = equality_advantage(&scheme, TRIALS, &mut rng());
        assert_eq!(adv, 1.0, "DET equality leakage is total");
    }

    #[test]
    fn prob_wins_equality_game() {
        let scheme = ProbScheme::new(&SymmetricKey::from_bytes([2; 32]));
        let adv = equality_advantage(&scheme, TRIALS, &mut rng());
        assert!(adv < 0.2, "PROB advantage should be noise: {adv}");
    }

    #[test]
    fn ope_loses_order_game() {
        let scheme = OpeScheme::new(
            &SymmetricKey::from_bytes([3; 32]),
            OpeDomain::new(0, 1 << 20),
        );
        let adv = order_advantage(|v| scheme.encrypt(v).unwrap(), TRIALS, &mut rng());
        assert_eq!(adv, 1.0, "OPE order leakage is total");
    }

    #[test]
    fn det_resists_order_game() {
        // Use the DET scheme's first 16 ciphertext bytes as a fake numeric
        // encoding: ordering of DET ciphertexts is unrelated to plaintext
        // order, so the advantage collapses.
        let scheme = DetScheme::new(&SymmetricKey::from_bytes([4; 32]));
        let mut throwaway = rng();
        let adv = order_advantage(
            |v| {
                let ct = scheme.encrypt(&v.to_be_bytes(), &mut throwaway);
                u128::from_be_bytes(ct.as_bytes()[..16].try_into().unwrap())
            },
            TRIALS,
            &mut rng(),
        );
        assert!(adv < 0.3, "DET order advantage should be noise: {adv}");
    }

    #[test]
    fn mope_loses_order_game_too() {
        // The other OPE instance leaks order just the same — same class.
        // mOPE's mutation contract means the adversary always observes the
        // *current* encoding table (deployments rewrite ciphertexts on
        // mutation), so the game reads encodings via lookup after both
        // insertions rather than caching possibly-stale ones.
        let mut mope = dpe_ope::MopeState::new();
        let mut game_rng = rng();
        let mut wins = 0usize;
        for t in 0..TRIALS {
            let base = 1000 + (t as u64) * 17;
            let pivot = base + 250;
            mope.encode(pivot).unwrap();
            let b: bool = game_rng.gen();
            let challenge_v = if b { base + 500 } else { base };
            mope.encode(challenge_v).unwrap();
            let c_pivot = mope.lookup(pivot).unwrap();
            let c_chal = mope.lookup(challenge_v).unwrap();
            if (c_chal > c_pivot) == b {
                wins += 1;
            }
        }
        assert_eq!(wins, TRIALS, "mOPE order leakage is total");
    }

    #[test]
    fn zero_trials_zero_advantage() {
        let scheme = ProbScheme::new(&SymmetricKey::from_bytes([5; 32]));
        assert_eq!(equality_advantage(&scheme, 0, &mut rng()), 0.0);
    }
}
