//! Gap-correlation and window-estimation attacks against OPE instances.
//!
//! Any *stateless* OPE necessarily embeds plaintext geometry into the
//! ciphertext space: large plaintext gaps tend to produce large ciphertext
//! gaps (Boldyreva et al.'s window one-wayness analysis makes this
//! quantitative). Popa's mutable OPE (mOPE, see `dpe-ope::mope`) removes
//! that channel — encodings depend on ranks and insertion order only. These
//! two attacks make the difference measurable, which is how the repository
//! justifies calling mOPE the "ideal-security" member of the OPE class
//! while Fig. 1 keeps both in the same row (both still leak order).
//!
//! * [`gap_correlation`] — Pearson correlation between adjacent plaintext
//!   gaps and adjacent ciphertext gaps over the sorted column. Stateless
//!   OPE: strongly positive. mOPE: ≈ 0 (or exactly undefined when the
//!   state was rebalanced to equidistant encodings — reported as 0).
//! * [`window_estimation_attack`] — a ciphertext-only attacker who knows
//!   the domain linearly interpolates `v̂ = ct · |domain| / |range|` and
//!   wins when `v̂` lands within `tolerance · |domain|` of the truth. On
//!   skewed (clustered) columns this recovers much more under stateless
//!   OPE than under mOPE, whose equidistant encodings only betray rank.

use crate::metrics::AttackOutcome;

/// Pearson correlation between adjacent-gap vectors of the sorted column.
///
/// `pairs` holds `(plaintext, ciphertext)` for *distinct* plaintexts; the
/// function sorts by plaintext (ciphertext order is then identical, or the
/// input was not order-preserving — a debug assertion guards this) and
/// correlates `p[i+1] − p[i]` with `c[i+1] − c[i]`.
///
/// Returns 0.0 when fewer than 3 points or when either gap vector is
/// constant (zero variance — e.g. a freshly rebalanced mOPE state).
pub fn gap_correlation(pairs: &[(u64, u128)]) -> f64 {
    if pairs.len() < 3 {
        return 0.0;
    }
    let mut sorted = pairs.to_vec();
    sorted.sort_unstable_by_key(|&(p, _)| p);
    debug_assert!(
        sorted.windows(2).all(|w| w[0].1 < w[1].1),
        "input is not order-preserving"
    );

    let pgaps: Vec<f64> = sorted
        .windows(2)
        .map(|w| (w[1].0 - w[0].0) as f64)
        .collect();
    let cgaps: Vec<f64> = sorted
        .windows(2)
        .map(|w| (w[1].1 - w[0].1) as f64)
        .collect();
    pearson(&pgaps, &cgaps)
}

/// Pearson's r; 0.0 when either side has zero variance.
fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Linear-interpolation estimation: the attacker knows the plaintext domain
/// `[domain_lo, domain_hi]` and the encoding range `[0, range_end)`, sees
/// only ciphertexts, and guesses `v̂ = domain_lo + ct/range_end · |domain|`.
///
/// A guess counts as recovered when `|v̂ − v| ≤ tolerance · |domain|`.
/// `truth` must align with `ciphertexts` (evaluation oracle only).
pub fn window_estimation_attack(
    ciphertexts: &[u128],
    truth: &[u64],
    domain_lo: u64,
    domain_hi: u64,
    range_end: u128,
    tolerance: f64,
) -> AttackOutcome {
    assert_eq!(
        ciphertexts.len(),
        truth.len(),
        "evaluation oracle must align"
    );
    assert!(domain_hi >= domain_lo, "empty domain");
    assert!(range_end > 0, "empty range");
    assert!(
        (0.0..1.0).contains(&tolerance),
        "tolerance must be in [0, 1)"
    );

    let dom_size = (domain_hi - domain_lo) as f64;
    let window = tolerance * dom_size;
    let mut recovered = 0;
    for (&ct, &v) in ciphertexts.iter().zip(truth) {
        let frac = ct as f64 / range_end as f64;
        let estimate = domain_lo as f64 + frac * dom_size;
        if (estimate - v as f64).abs() <= window {
            recovered += 1;
        }
    }
    AttackOutcome {
        recovered,
        total: ciphertexts.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_crypto::SymmetricKey;
    use dpe_ope::{MopeState, OpeDomain, OpeScheme};

    /// Clustered plaintexts: three tight clusters with huge gaps between
    /// them — the shape on which gap leakage is most visible.
    fn clustered_values() -> Vec<u64> {
        let mut v = Vec::new();
        for i in 0..40u64 {
            v.push(1_000 + i * 3);
        }
        for i in 0..40u64 {
            v.push(2_000_000_000 + i * 5);
        }
        for i in 0..40u64 {
            v.push(4_100_000_000 + i * 2);
        }
        v
    }

    #[test]
    fn stateless_ope_gaps_correlate() {
        let s = OpeScheme::new(
            &SymmetricKey::from_bytes([61; 32]),
            OpeDomain::new(0, u32::MAX as u64 * 2),
        );
        let pairs: Vec<(u64, u128)> = clustered_values()
            .iter()
            .map(|&v| (v, s.encrypt(v).unwrap()))
            .collect();
        let r = gap_correlation(&pairs);
        assert!(r > 0.8, "stateless OPE should leak gaps strongly, r = {r}");
    }

    #[test]
    fn mope_gaps_do_not_correlate() {
        let mut m = MopeState::new();
        // Insert in a scrambled deterministic order.
        let mut values = clustered_values();
        let n = values.len();
        for i in 0..n {
            values.swap(i, (i * 7 + 3) % n);
        }
        let pairs: Vec<(u64, u128)> = values.iter().map(|&v| (v, m.encode(v).unwrap())).collect();
        // Re-read current encodings (mutations may have superseded some).
        let pairs: Vec<(u64, u128)> = pairs
            .iter()
            .map(|&(v, _)| (v, m.lookup(v).unwrap()))
            .collect();
        let r = gap_correlation(&pairs);
        assert!(r.abs() < 0.4, "mOPE should not leak gaps, r = {r}");
    }

    #[test]
    fn rebalanced_mope_has_zero_gap_variance() {
        let mut m = MopeState::with_range_bits(9);
        for v in clustered_values() {
            m.encode(v).unwrap();
        }
        assert!(m.rebalance_count() > 0 || m.len() < 120);
        // After an equidistant rebalance all ciphertext gaps are (nearly)
        // equal; correlation collapses toward 0.
        let pairs: Vec<(u64, u128)> = m.encodings().collect();
        let r = gap_correlation(&pairs);
        assert!(
            r.abs() < 0.2,
            "equidistant encodings still correlate? r = {r}"
        );
    }

    #[test]
    fn window_attack_beats_mope_on_skewed_data() {
        let domain_hi = u32::MAX as u64 * 2;
        let s = OpeScheme::new(
            &SymmetricKey::from_bytes([62; 32]),
            OpeDomain::new(0, domain_hi),
        );
        let values = clustered_values();

        let ope_cts: Vec<u128> = values.iter().map(|&v| s.encrypt(v).unwrap()).collect();
        let ope = window_estimation_attack(
            &ope_cts,
            &values,
            0,
            domain_hi,
            OpeDomain::new(0, domain_hi).range_size(),
            0.15,
        );

        let mut m = MopeState::new();
        for &v in &values {
            m.encode(v).unwrap();
        }
        let mope_cts: Vec<u128> = values.iter().map(|&v| m.lookup(v).unwrap()).collect();
        let mope = window_estimation_attack(&mope_cts, &values, 0, domain_hi, 1u128 << 64, 0.15);

        assert!(
            ope.success_rate() > mope.success_rate() + 0.2,
            "expected stateless OPE ({}) to leak well beyond mOPE ({})",
            ope,
            mope
        );
    }

    #[test]
    fn degenerate_inputs_return_zero() {
        assert_eq!(gap_correlation(&[]), 0.0);
        assert_eq!(gap_correlation(&[(1, 10)]), 0.0);
        assert_eq!(gap_correlation(&[(1, 10), (2, 20)]), 0.0);
        // Constant gaps → zero variance → 0.
        let equidistant: Vec<(u64, u128)> = (0..10).map(|i| (i * 5, (i as u128) * 100)).collect();
        assert_eq!(gap_correlation(&equidistant), 0.0);
    }

    #[test]
    #[should_panic(expected = "evaluation oracle must align")]
    fn window_attack_rejects_misaligned_oracle() {
        window_estimation_attack(&[1, 2], &[1], 0, 10, 100, 0.1);
    }
}
