//! # dpe-attacks — the passive attacks of the threat model
//!
//! §II-1 of the paper restricts the threat model to passive attacks;
//! Sanamrad & Kossmann \[9\] instantiate them for query logs (query-only /
//! known-query / chosen-query). This crate implements concrete instances
//! against the PPE classes so that the security ordering of **Fig. 1** can
//! be *measured* instead of quoted:
//!
//! * [`freq`] — frequency analysis against DET ciphertexts under a
//!   query-only attacker with known value distribution;
//! * [`sorting`] — the sorting/rank attack against OPE;
//! * [`ind_game`] — equality- and order-distinguishing games (the
//!   ciphertext-indistinguishability experiments PROB wins and DET/OPE
//!   lose);
//! * [`linkage`] — cross-column linkage against JOIN groups;
//! * [`known_query`] — the known-query (known-plaintext) attack: a partial
//!   token dictionary propagated to the rest of the log;
//! * [`mod@gap_correlation`] — gap-correlation and window-estimation attacks
//!   separating stateless OPE from mutable OPE (mOPE) *within* the OPE row
//!   of Fig. 1;
//! * [`metrics`] — recovery-rate bookkeeping shared by all attacks.
//!
//! The F1 experiment in `dpe-bench` drives these against the concrete
//! schemes and derives each class's *empirical leakage count*, which must
//! reproduce the figure's rows.

#![forbid(unsafe_code)]

pub mod freq;
pub mod gap_correlation;
pub mod ind_game;
pub mod known_query;
pub mod linkage;
pub mod metrics;
pub mod sorting;

pub use freq::frequency_attack;
pub use gap_correlation::{gap_correlation, window_estimation_attack};
pub use ind_game::{equality_advantage, order_advantage};
pub use known_query::known_query_attack;
pub use linkage::join_linkage;
pub use metrics::AttackOutcome;
pub use sorting::sorting_attack;
