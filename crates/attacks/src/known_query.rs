//! The known-query attack of Sanamrad & Kossmann \[9\]: the known-plaintext
//! attack instantiated for query logs.
//!
//! The adversary holds a few `(plaintext query, encrypted query)` pairs —
//! e.g. queries it induced the client to issue — and builds a token
//! dictionary from them (under DET, each plaintext token always maps to the
//! same ciphertext token). It then applies the dictionary to the *rest* of
//! the encrypted log and counts how many ciphertext tokens it can name.
//!
//! The attack quantifies a real DET weakness the paper's Step-4 assessment
//! inherits: security degrades gracefully-but-surely with attacker
//! knowledge, which is why PROB slots (structure distance's constants) are
//! strictly better whenever the measure allows them.

use crate::metrics::AttackOutcome;
use std::collections::BTreeMap;

/// A query as a token sequence (the attack is representation-agnostic; the
/// caller tokenizes however the scheme did).
pub type TokenSeq = Vec<String>;

/// Runs the known-query attack.
///
/// * `known_pairs` — aligned (plaintext tokens, ciphertext tokens) pairs;
///   misaligned pairs (length mismatch) are skipped, as a real attacker
///   would discard them.
/// * `target_enc` — the encrypted queries under attack;
/// * `target_plain` — the aligned true plaintexts (evaluation only).
///
/// Returns recovery over all *tokens* of the target set.
pub fn known_query_attack(
    known_pairs: &[(TokenSeq, TokenSeq)],
    target_enc: &[TokenSeq],
    target_plain: &[TokenSeq],
) -> AttackOutcome {
    assert_eq!(
        target_enc.len(),
        target_plain.len(),
        "evaluation oracle must align"
    );

    // Build the dictionary ciphertext-token → plaintext-token. Positional
    // alignment works because Enc(Q) preserves query structure (Example 4).
    let mut dictionary: BTreeMap<&String, &String> = BTreeMap::new();
    for (plain, enc) in known_pairs {
        if plain.len() != enc.len() {
            continue;
        }
        for (p, c) in plain.iter().zip(enc) {
            dictionary.insert(c, p);
        }
    }

    let mut recovered = 0;
    let mut total = 0;
    for (enc, plain) in target_enc.iter().zip(target_plain) {
        if enc.len() != plain.len() {
            // Cannot happen for structure-preserving encryption; count the
            // tokens as unrecovered to stay conservative.
            total += plain.len();
            continue;
        }
        for (c, p) in enc.iter().zip(plain) {
            total += 1;
            if dictionary.get(c).map(|g| *g == p).unwrap_or(false) {
                recovered += 1;
            }
        }
    }
    AttackOutcome { recovered, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulated DET token encryption: stable per-token mapping.
    fn det(tokens: &[&str]) -> TokenSeq {
        tokens.iter().map(|t| format!("e{:x}", hash(t))).collect()
    }

    fn plain(tokens: &[&str]) -> TokenSeq {
        tokens.iter().map(|t| t.to_string()).collect()
    }

    fn hash(s: &str) -> u64 {
        s.bytes().fold(1469598103934665603u64, |h, b| {
            (h ^ b as u64).wrapping_mul(1099511628211)
        })
    }

    #[test]
    fn shared_tokens_recovered() {
        let known = vec![(
            plain(&["SELECT", "ra", "FROM", "photoobj"]),
            det(&["SELECT", "ra", "FROM", "photoobj"]),
        )];
        // Target shares SELECT/FROM/photoobj but not "dec".
        let target_p = vec![plain(&["SELECT", "dec", "FROM", "photoobj"])];
        let target_e = vec![det(&["SELECT", "dec", "FROM", "photoobj"])];
        let outcome = known_query_attack(&known, &target_e, &target_p);
        assert_eq!(outcome.recovered, 3);
        assert_eq!(outcome.total, 4);
    }

    #[test]
    fn more_knowledge_more_recovery() {
        let q1 = ["SELECT", "ra", "FROM", "photoobj"];
        let q2 = ["SELECT", "dec", "FROM", "specobj"];
        let target_tokens = ["SELECT", "ra", "FROM", "specobj"];
        let target_p = vec![plain(&target_tokens)];
        let target_e = vec![det(&target_tokens)];

        let little = known_query_attack(&[(plain(&q1), det(&q1))], &target_e, &target_p);
        let lots = known_query_attack(
            &[(plain(&q1), det(&q1)), (plain(&q2), det(&q2))],
            &target_e,
            &target_p,
        );
        assert!(lots.recovered > little.recovered);
        assert_eq!(lots.recovered, 4);
    }

    #[test]
    fn prob_tokens_resist() {
        // Under PROB the "same" token encrypts differently each time, so
        // the dictionary never matches the target's fresh ciphertexts.
        let known = vec![(plain(&["SELECT", "ra"]), plain(&["r1", "r2"]))];
        let target_p = vec![plain(&["SELECT", "ra"])];
        let target_e = vec![plain(&["r3", "r4"])]; // fresh randomness
        let outcome = known_query_attack(&known, &target_e, &target_p);
        assert_eq!(outcome.recovered, 0);
    }

    #[test]
    fn misaligned_known_pairs_skipped() {
        let known = vec![(plain(&["a", "b"]), plain(&["x"]))]; // bogus pair
        let target_p = vec![plain(&["a"])];
        let target_e = vec![plain(&["x"])];
        let outcome = known_query_attack(&known, &target_e, &target_p);
        assert_eq!(outcome.recovered, 0);
        assert_eq!(outcome.total, 1);
    }

    #[test]
    fn no_knowledge_no_recovery() {
        let target_p = vec![plain(&["SELECT", "ra"])];
        let target_e = vec![det(&["SELECT", "ra"])];
        let outcome = known_query_attack(&[], &target_e, &target_p);
        assert_eq!(outcome.recovered, 0);
        assert_eq!(outcome.total, 2);
    }
}
