//! The sorting (rank) attack against order-preserving encryption.
//!
//! When the attacker knows the plaintext multiset (or a good approximation
//! of the distribution) of an OPE column, sorting the ciphertexts and
//! aligning ranks recovers plaintexts outright — 100% on dense columns.
//! This is the classic argument for OPE's bottom-row placement in Fig. 1.

use crate::metrics::AttackOutcome;

/// Runs the rank-alignment attack.
///
/// * `ciphertexts` — observed OPE ciphertexts (order-preserved `u128`s);
/// * `truth` — aligned true plaintexts (evaluation only);
/// * `known_multiset` — the attacker's knowledge of the plaintext values
///   (sorted or not).
pub fn sorting_attack(
    ciphertexts: &[u128],
    truth: &[i64],
    known_multiset: &[i64],
) -> AttackOutcome {
    assert_eq!(
        ciphertexts.len(),
        truth.len(),
        "evaluation oracle must align"
    );
    if ciphertexts.len() != known_multiset.len() {
        // Rank alignment needs equal counts; a real attacker would subsample
        // — for the harness, mismatched knowledge means no recovery.
        return AttackOutcome {
            recovered: 0,
            total: ciphertexts.len(),
        };
    }

    // Sort ciphertext positions by value; sort known plaintexts; align.
    let mut order: Vec<usize> = (0..ciphertexts.len()).collect();
    order.sort_by_key(|&i| ciphertexts[i]);
    let mut known = known_multiset.to_vec();
    known.sort_unstable();

    let mut recovered = 0;
    for (rank, &pos) in order.iter().enumerate() {
        if known[rank] == truth[pos] {
            recovered += 1;
        }
    }
    AttackOutcome {
        recovered,
        total: ciphertexts.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpe_crypto::SymmetricKey;
    use dpe_ope::{OpeDomain, OpeScheme};

    fn ope() -> OpeScheme {
        OpeScheme::new(
            &SymmetricKey::from_bytes([44; 32]),
            OpeDomain::new(0, 100_000),
        )
    }

    #[test]
    fn full_recovery_with_exact_knowledge() {
        let scheme = ope();
        let plain: Vec<i64> = vec![5, 99, 1234, 42, 777, 31337, 2, 2, 500];
        let cts: Vec<u128> = plain
            .iter()
            .map(|&v| scheme.encrypt(v as u64).unwrap())
            .collect();
        let outcome = sorting_attack(&cts, &plain, &plain);
        assert_eq!(outcome.success_rate(), 1.0);
    }

    #[test]
    fn det_like_ciphertexts_resist() {
        // DET does not preserve order: scramble the ciphertext order
        // relative to plaintext order and rank alignment fails.
        let plain: Vec<i64> = (0..20).collect();
        // A keyed "DET": pseudo-random permutation of values as ciphertexts.
        let cts: Vec<u128> = plain
            .iter()
            .map(|&v| ((v * 7919 + 13) % 19997) as u128)
            .collect();
        let outcome = sorting_attack(&cts, &plain, &plain);
        assert!(outcome.success_rate() < 0.3, "{outcome}");
    }

    #[test]
    fn approximate_knowledge_partial_recovery() {
        let scheme = ope();
        let plain: Vec<i64> = vec![10, 20, 30, 40, 50];
        let cts: Vec<u128> = plain
            .iter()
            .map(|&v| scheme.encrypt(v as u64).unwrap())
            .collect();
        // Attacker's multiset is close but one value off.
        let approx = vec![10, 20, 30, 40, 60];
        let outcome = sorting_attack(&cts, &plain, &approx);
        assert_eq!(outcome.recovered, 4);
    }

    #[test]
    fn size_mismatch_recovers_nothing() {
        let outcome = sorting_attack(&[1, 2], &[10, 20], &[10]);
        assert_eq!(outcome.recovered, 0);
        assert_eq!(outcome.total, 2);
    }
}
