//! Frequency analysis against deterministic encryption.
//!
//! Query-only attacker model \[9\]: the adversary sees the DET ciphertext
//! column (equal plaintexts → equal ciphertexts, so ciphertext frequencies
//! mirror plaintext frequencies) and knows the approximate plaintext
//! distribution from auxiliary data. Matching frequency ranks recovers the
//! hot values — devastating on skewed (Zipf) columns, which is exactly why
//! DET sits a row below PROB in Fig. 1.

use crate::metrics::AttackOutcome;
use std::collections::BTreeMap;

/// Runs the rank-matching attack.
///
/// * `ciphertexts` — the observed column (opaque strings);
/// * `truth` — the aligned true plaintexts (evaluation oracle only);
/// * `known_distribution` — the attacker's auxiliary knowledge: plaintext
///   values with (approximate) occurrence counts.
///
/// Returns how many ciphertext *occurrences* were labelled correctly.
pub fn frequency_attack(
    ciphertexts: &[String],
    truth: &[String],
    known_distribution: &[(String, usize)],
) -> AttackOutcome {
    assert_eq!(
        ciphertexts.len(),
        truth.len(),
        "evaluation oracle must align"
    );

    // Rank ciphertexts by observed frequency (ties: lexicographic, so the
    // attack is deterministic).
    let mut ct_freq: BTreeMap<&String, usize> = BTreeMap::new();
    for ct in ciphertexts {
        *ct_freq.entry(ct).or_default() += 1;
    }
    let mut ct_ranked: Vec<(&String, usize)> = ct_freq.into_iter().collect();
    ct_ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));

    // Rank known plaintexts by auxiliary frequency.
    let mut plain_ranked: Vec<(&String, usize)> =
        known_distribution.iter().map(|(p, c)| (p, *c)).collect();
    plain_ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));

    // Guess: i-th most frequent ciphertext ↦ i-th most frequent plaintext.
    let guess: BTreeMap<&String, &String> = ct_ranked
        .iter()
        .zip(plain_ranked.iter())
        .map(|((ct, _), (p, _))| (*ct, *p))
        .collect();

    let recovered = ciphertexts
        .iter()
        .zip(truth)
        .filter(|(ct, t)| guess.get(ct).map(|g| *g == *t).unwrap_or(false))
        .count();
    AttackOutcome {
        recovered,
        total: ciphertexts.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulates a DET column: plaintext → stable fake ciphertext.
    fn det_encrypt(plain: &[&str]) -> Vec<String> {
        plain
            .iter()
            .map(|p| format!("ct_{:x}", fxhash(p)))
            .collect()
    }

    fn fxhash(s: &str) -> u64 {
        s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100000001b3)
        })
    }

    #[test]
    fn skewed_det_column_fully_recovered() {
        // STAR 6×, GALAXY 3×, QSO 1× — distinct frequencies, perfect attack.
        let plain: Vec<&str> = std::iter::repeat_n("STAR", 6)
            .chain(std::iter::repeat_n("GALAXY", 3))
            .chain(std::iter::once("QSO"))
            .collect();
        let cts = det_encrypt(&plain);
        let truth: Vec<String> = plain.iter().map(|s| s.to_string()).collect();
        let aux = vec![
            ("STAR".to_string(), 60),
            ("GALAXY".to_string(), 30),
            ("QSO".to_string(), 10),
        ];
        let outcome = frequency_attack(&cts, &truth, &aux);
        assert_eq!(outcome.success_rate(), 1.0);
    }

    #[test]
    fn prob_column_defeats_the_attack() {
        // PROB: every occurrence is a unique ciphertext → all frequencies 1
        // → rank matching recovers at most the single hottest guess by luck.
        let plain = ["STAR", "STAR", "STAR", "GALAXY", "QSO", "QSO"];
        let cts: Vec<String> = (0..plain.len()).map(|i| format!("rnd_{i}")).collect();
        let truth: Vec<String> = plain.iter().map(|s| s.to_string()).collect();
        let aux = vec![
            ("STAR".to_string(), 50),
            ("QSO".to_string(), 30),
            ("GALAXY".to_string(), 20),
        ];
        let outcome = frequency_attack(&cts, &truth, &aux);
        assert!(outcome.success_rate() <= 0.34, "{outcome}");
    }

    #[test]
    fn aux_distribution_quality_matters() {
        // Wrong auxiliary ordering mislabels everything but ties.
        let plain = ["A", "A", "A", "B"];
        let cts = det_encrypt(&plain);
        let truth: Vec<String> = plain.iter().map(|s| s.to_string()).collect();
        let wrong_aux = vec![("A".to_string(), 1), ("B".to_string(), 9)];
        let outcome = frequency_attack(&cts, &truth, &wrong_aux);
        assert_eq!(outcome.recovered, 0);
    }

    #[test]
    fn empty_inputs() {
        let outcome = frequency_attack(&[], &[], &[]);
        assert_eq!(outcome.success_rate(), 0.0);
    }
}
