//! Fixed-base windowed modular exponentiation.
//!
//! When one base is raised to many different exponents under one modulus —
//! the shape of Paillier's `g^m` term and of precomputing encryption
//! randomness from a fixed group element — generic square-and-multiply
//! wastes work re-deriving the same powers of the base on every call.
//! [`FixedBaseTable`] spends that work once: it stores
//! `base^(d · 2^(w·i)) mod m` for every window position `i` and digit
//! `d ∈ [1, 2^w)`, after which each exponentiation is just one table
//! lookup and one modular multiplication per `w`-bit window of the
//! exponent — no squarings at all.
//!
//! For a `k`-bit exponent the online cost drops from ~`1.5k` modular
//! multiplications (square-and-multiply) to `⌈k/w⌉`, a ~9× reduction at
//! `w = 6` — the amortized/offline trick the batched Paillier engine in
//! `dpe-paillier` builds on.
//!
//! For **odd** moduli the table additionally stores its rows in Montgomery
//! form and runs the per-window multiplications through
//! [`MontgomeryCtx::mont_mul`](crate::MontgomeryCtx::mont_mul) —
//! division-free — converting out of form once per call. Even moduli fall
//! back to schoolbook [`BigUint::modmul`]. Both paths return bit-identical
//! results.

use crate::montgomery::MontgomeryCtx;
use crate::BigUint;

/// The `index`-th little-endian `width`-bit digit of `exp`.
///
/// Shared window machinery for [`FixedBaseTable`], [`MontgomeryCtx`]'s
/// windowed `mont_pow`, and the Straus multi-exponentiation in
/// [`crate::multi_exp`].
pub(crate) fn window_digit(exp: &BigUint, index: usize, width: usize) -> usize {
    let lo = index * width;
    let mut digit = 0usize;
    for b in 0..width {
        if exp.bit(lo + b) {
            digit |= 1 << b;
        }
    }
    digit
}

/// Default window width (bits) for exponents of at least this size.
const WIDE_WINDOW_THRESHOLD_BITS: usize = 96;

/// Precomputed powers of one base under one modulus, for exponents up to a
/// fixed bit length.
///
/// Construction costs `⌈max_exp_bits/w⌉ · (2^w − 1)` modular
/// multiplications and the same number of stored values; every subsequent
/// [`FixedBaseTable::pow`] costs at most `⌈max_exp_bits/w⌉ − 1`
/// multiplications. Build a table whenever the same base will be
/// exponentiated more than a handful of times.
///
/// ```
/// use dpe_bignum::{BigUint, FixedBaseTable};
///
/// let m = BigUint::from(1_000_000_007u64);
/// let table = FixedBaseTable::new(&BigUint::from(3u64), &m, 64);
/// let exp = BigUint::from(1_234_567u64);
/// assert_eq!(table.pow(&exp), BigUint::from(3u64).modpow(&exp, &m));
/// ```
#[derive(Clone, Debug)]
pub struct FixedBaseTable {
    modulus: BigUint,
    window_bits: usize,
    max_exp_bits: usize,
    /// `table[i][d - 1] = base^(d · 2^(w·i)) mod modulus` for digit
    /// `d ∈ [1, 2^w)`; one inner vector per window position. Entries are
    /// in Montgomery form when `ctx` is `Some`.
    table: Vec<Vec<BigUint>>,
    /// REDC context for odd moduli; `None` means the even-modulus
    /// schoolbook fallback.
    ctx: Option<MontgomeryCtx>,
}

impl FixedBaseTable {
    /// Builds a table for `base` under `modulus`, serving exponents of up
    /// to `max_exp_bits` bits, with an automatically chosen window width
    /// (6 bits for exponents of at least 96 bits, 4 below).
    ///
    /// # Panics
    ///
    /// Panics when `modulus` is zero.
    pub fn new(base: &BigUint, modulus: &BigUint, max_exp_bits: usize) -> FixedBaseTable {
        let window = if max_exp_bits >= WIDE_WINDOW_THRESHOLD_BITS {
            6
        } else {
            4
        };
        FixedBaseTable::with_window(base, modulus, max_exp_bits, window)
    }

    /// Builds a table with an explicit window width of `window_bits`
    /// (clamped to `[1, 12]`; table size grows as `2^window_bits` per
    /// window position, so wide windows only pay off for huge exponent
    /// volumes).
    ///
    /// # Panics
    ///
    /// Panics when `modulus` is zero.
    pub fn with_window(
        base: &BigUint,
        modulus: &BigUint,
        max_exp_bits: usize,
        window_bits: usize,
    ) -> FixedBaseTable {
        assert!(!modulus.is_zero(), "fixed-base modulus must be nonzero");
        let window_bits = window_bits.clamp(1, 12);
        let windows = max_exp_bits.div_ceil(window_bits);
        let digits = (1usize << window_bits) - 1;
        let ctx = MontgomeryCtx::new(modulus);
        let mut table = Vec::with_capacity(windows);
        // Window 0 holds base^1 … base^(2^w − 1); each following window's
        // generator is the previous one raised to 2^w, obtained as
        // `last · first` of the previous row (no extra squarings). With a
        // REDC context the whole chain — and the stored rows — stay in
        // Montgomery form.
        let mut generator = base % modulus;
        if let Some(ctx) = &ctx {
            generator = ctx.to_mont(&generator);
        }
        let mul = |a: &BigUint, b: &BigUint| match &ctx {
            Some(ctx) => ctx.mont_mul(a, b),
            None => a.modmul(b, modulus),
        };
        for _ in 0..windows {
            let mut row = Vec::with_capacity(digits);
            let mut power = generator.clone();
            for _ in 0..digits {
                row.push(power.clone());
                power = mul(&power, &generator);
            }
            // `power` is now generator^(2^w): the next window's generator.
            generator = power;
            table.push(row);
        }
        FixedBaseTable {
            modulus: modulus.clone(),
            window_bits,
            max_exp_bits,
            table,
            ctx,
        }
    }

    /// `base^exp mod modulus` from the table: one lookup-and-multiply per
    /// nonzero `window_bits`-wide digit of `exp`.
    ///
    /// The result is identical to [`BigUint::modpow`] on the same
    /// operands.
    ///
    /// # Panics
    ///
    /// Panics when `exp` is wider than the `max_exp_bits` the table was
    /// built for.
    pub fn pow(&self, exp: &BigUint) -> BigUint {
        assert!(
            exp.bit_len() <= self.max_exp_bits,
            "exponent of {} bits exceeds the table's {}-bit capacity",
            exp.bit_len(),
            self.max_exp_bits
        );
        if self.modulus.is_one() {
            return BigUint::zero();
        }
        match &self.ctx {
            Some(ctx) => {
                // Rows are in Montgomery form: accumulate in form (one
                // REDC-mul per nonzero digit), convert out once.
                let mut acc = ctx.one().clone();
                for (i, row) in self.table.iter().enumerate() {
                    let digit = window_digit(exp, i, self.window_bits);
                    if digit != 0 {
                        acc = ctx.mont_mul(&acc, &row[digit - 1]);
                    }
                }
                ctx.from_mont(&acc)
            }
            None => {
                let mut acc = BigUint::one();
                for (i, row) in self.table.iter().enumerate() {
                    let digit = window_digit(exp, i, self.window_bits);
                    if digit != 0 {
                        acc = acc.modmul(&row[digit - 1], &self.modulus);
                    }
                }
                acc
            }
        }
    }

    /// Largest exponent bit length this table serves.
    pub fn max_exp_bits(&self) -> usize {
        self.max_exp_bits
    }

    /// Window width in bits.
    pub fn window_bits(&self) -> usize {
        self.window_bits
    }

    /// The modulus the table reduces under.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Number of precomputed group elements held.
    pub fn table_len(&self) -> usize {
        self.table.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn matches_modpow_small() {
        let m = n(97);
        let base = n(5);
        let table = FixedBaseTable::new(&base, &m, 32);
        for e in 0u64..200 {
            assert_eq!(table.pow(&n(e)), base.modpow(&n(e), &m), "exp {e}");
        }
    }

    #[test]
    fn matches_modpow_large_operands() {
        let m = &(BigUint::one() << 256usize) - &n(189); // arbitrary odd modulus
        let base = &(BigUint::one() << 200usize) + &n(12345);
        let table = FixedBaseTable::new(&base, &m, 256);
        for shift in [0usize, 1, 63, 64, 128, 255] {
            let exp = &(BigUint::one() << shift) + &n(7);
            assert_eq!(table.pow(&exp), base.modpow(&exp, &m), "shift {shift}");
        }
    }

    #[test]
    fn every_window_width_agrees() {
        let m = n(1_000_000_007);
        let base = n(123_456);
        let exp = n(987_654_321);
        let want = base.modpow(&exp, &m);
        for w in 1..=8 {
            let table = FixedBaseTable::with_window(&base, &m, 64, w);
            assert_eq!(table.pow(&exp), want, "window {w}");
            assert_eq!(table.window_bits(), w);
        }
    }

    #[test]
    fn zero_exponent_and_zero_base() {
        let m = n(101);
        let zeros = FixedBaseTable::new(&BigUint::zero(), &m, 16);
        assert_eq!(zeros.pow(&BigUint::zero()), BigUint::one());
        assert_eq!(zeros.pow(&n(5)), BigUint::zero());
        let table = FixedBaseTable::new(&n(7), &m, 16);
        assert_eq!(table.pow(&BigUint::zero()), BigUint::one());
    }

    #[test]
    fn modulus_one_collapses_to_zero() {
        let table = FixedBaseTable::new(&n(5), &BigUint::one(), 16);
        assert_eq!(table.pow(&n(3)), BigUint::zero());
    }

    #[test]
    fn capacity_is_exact() {
        let m = n(1_000_003);
        let table = FixedBaseTable::new(&n(2), &m, 20);
        // 2^20 needs 21 bits: over capacity. 2^20 − 1 fits exactly.
        let max = &(BigUint::one() << 20usize) - &BigUint::one();
        assert_eq!(table.pow(&max), n(2).modpow(&max, &m));
        assert_eq!(table.max_exp_bits(), 20);
    }

    #[test]
    #[should_panic(expected = "exceeds the table's")]
    fn oversized_exponent_panics() {
        let table = FixedBaseTable::new(&n(3), &n(97), 8);
        table.pow(&n(256)); // 9 bits
    }

    #[test]
    fn exponent_at_exact_capacity_succeeds() {
        // Boundary regression pair with `one_bit_past_capacity_panics`:
        // the `bit_len() <= max_exp_bits` assert must accept an exponent
        // of *exactly* max_exp_bits bits…
        let m = n(1_000_000_007);
        let table = FixedBaseTable::new(&n(3), &m, 8);
        let exp = n(255); // 8 bits: 0b1111_1111
        assert_eq!(exp.bit_len(), table.max_exp_bits());
        assert_eq!(table.pow(&exp), n(3).modpow(&exp, &m));
        let exp = n(128); // 8 bits: 0b1000_0000
        assert_eq!(table.pow(&exp), n(3).modpow(&exp, &m));
    }

    #[test]
    #[should_panic(expected = "exceeds the table's 8-bit capacity")]
    fn one_bit_past_capacity_panics() {
        // …and reject one of max_exp_bits + 1 bits.
        let table = FixedBaseTable::new(&n(3), &n(1_000_000_007), 8);
        table.pow(&n(256)); // 9 bits: 0b1_0000_0000
    }

    #[test]
    fn even_modulus_uses_schoolbook_path() {
        // Even moduli can't take the Montgomery path; the fallback must
        // agree with modpow all the same.
        let m = n(1_000_000_006);
        let base = n(123_457);
        let table = FixedBaseTable::new(&base, &m, 64);
        for e in [0u64, 1, 2, 255, 987_654_321, u64::MAX] {
            assert_eq!(table.pow(&n(e)), base.modpow(&n(e), &m), "exp {e}");
        }
    }

    #[test]
    #[should_panic(expected = "modulus must be nonzero")]
    fn zero_modulus_panics() {
        FixedBaseTable::new(&n(3), &BigUint::zero(), 8);
    }

    #[test]
    fn table_len_matches_shape() {
        let table = FixedBaseTable::with_window(&n(3), &n(97), 16, 4);
        // 4 windows × (2^4 − 1) digits.
        assert_eq!(table.table_len(), 4 * 15);
    }
}
