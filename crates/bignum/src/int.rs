//! A minimal signed big integer, used internally by the extended Euclidean
//! algorithm and exposed for completeness.

use crate::BigUint;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Sign of a [`BigInt`]. Zero always carries [`Sign::Plus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sign {
    /// Non-negative.
    Plus,
    /// Strictly negative.
    Minus,
}

/// A signed arbitrary-precision integer: a sign and a [`BigUint`] magnitude.
///
/// The invariant `magnitude == 0 ⇒ sign == Plus` keeps equality structural.
#[derive(Clone, PartialEq, Eq)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// Zero.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Plus,
            mag: BigUint::zero(),
        }
    }

    /// Builds a non-negative integer from a magnitude.
    pub fn from_biguint(mag: BigUint) -> Self {
        BigInt {
            sign: Sign::Plus,
            mag,
        }
    }

    /// Builds an integer from an explicit sign and magnitude.
    pub fn new(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            BigInt { sign, mag }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The absolute value.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Floor division: the largest `q` with `q·rhs ≤ self` (sign-aware).
    ///
    /// Together with the callers' update rule this keeps the extended-Euclid
    /// remainders non-negative.
    pub fn div_floor(&self, rhs: &BigInt) -> BigInt {
        assert!(!rhs.is_zero(), "BigInt division by zero");
        let (q, r) = self.mag.div_rem(&rhs.mag);
        let same_sign = self.sign == rhs.sign;
        if same_sign {
            BigInt::new(Sign::Plus, q)
        } else if r.is_zero() {
            BigInt::new(Sign::Minus, q)
        } else {
            // Round toward negative infinity.
            BigInt::new(Sign::Minus, &q + &BigUint::one())
        }
    }

    /// Reduces into `[0, m)` treating `self` as an element of ℤ/mℤ.
    pub fn rem_euclid_biguint(&self, m: &BigUint) -> BigUint {
        let r = &self.mag % m;
        match self.sign {
            Sign::Plus => r,
            Sign::Minus => {
                if r.is_zero() {
                    r
                } else {
                    m - &r
                }
            }
        }
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        if v < 0 {
            BigInt::new(Sign::Minus, BigUint::from(v.unsigned_abs()))
        } else {
            BigInt::new(Sign::Plus, BigUint::from(v as u64))
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        match self.sign {
            _ if self.is_zero() => BigInt::zero(),
            Sign::Plus => BigInt::new(Sign::Minus, self.mag.clone()),
            Sign::Minus => BigInt::new(Sign::Plus, self.mag.clone()),
        }
    }
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        if self.sign == rhs.sign {
            BigInt::new(self.sign, &self.mag + &rhs.mag)
        } else {
            match self.mag.cmp(&rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::new(self.sign, &self.mag - &rhs.mag),
                Ordering::Less => BigInt::new(rhs.sign, &rhs.mag - &self.mag),
            }
        }
    }
}

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        let sign = if self.sign == rhs.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        BigInt::new(sign, &self.mag * &rhs.mag)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Minus {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn zero_normalizes_sign() {
        assert_eq!(BigInt::new(Sign::Minus, BigUint::zero()), BigInt::zero());
        assert!(!BigInt::zero().is_negative());
    }

    #[test]
    fn signed_add_sub() {
        assert_eq!(&i(5) + &i(-3), i(2));
        assert_eq!(&i(3) + &i(-5), i(-2));
        assert_eq!(&i(-3) + &i(-5), i(-8));
        assert_eq!(&i(3) - &i(5), i(-2));
        assert_eq!(&i(-3) - &i(-3), BigInt::zero());
    }

    #[test]
    fn signed_mul() {
        assert_eq!(&i(-4) * &i(5), i(-20));
        assert_eq!(&i(-4) * &i(-5), i(20));
        assert_eq!(&i(0) * &i(-5), BigInt::zero());
    }

    #[test]
    fn div_floor_rounds_down() {
        assert_eq!(i(7).div_floor(&i(2)), i(3));
        assert_eq!(i(-7).div_floor(&i(2)), i(-4));
        assert_eq!(i(7).div_floor(&i(-2)), i(-4));
        assert_eq!(i(-7).div_floor(&i(-2)), i(3));
        assert_eq!(i(-6).div_floor(&i(2)), i(-3));
    }

    #[test]
    fn rem_euclid_wraps_negative() {
        let m = BigUint::from(7u64);
        assert_eq!(i(-3).rem_euclid_biguint(&m), BigUint::from(4u64));
        assert_eq!(i(10).rem_euclid_biguint(&m), BigUint::from(3u64));
        assert_eq!(i(-14).rem_euclid_biguint(&m), BigUint::zero());
    }

    #[test]
    fn display_negative() {
        assert_eq!(i(-42).to_string(), "-42");
        assert_eq!(BigInt::zero().to_string(), "0");
    }
}
