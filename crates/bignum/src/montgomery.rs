//! Montgomery-form modular arithmetic — the raw-speed layer under every
//! crypto hot loop in this workspace.
//!
//! Schoolbook [`BigUint::modmul`] pays a full Knuth division per product;
//! a `k`-bit [`BigUint::modpow`] therefore pays ~`1.5k` divisions. REDC
//! (Montgomery 1985) removes the divisions entirely: operands are carried
//! in *Montgomery form* `x̃ = x·R mod n` with `R = 2^(64·k)` for a
//! `k`-limb odd modulus `n`, and the product of two form-values is reduced
//! by the interleaved CIOS loop — limb multiplies, adds, and one
//! word-shift per limb, no division anywhere. One context buys:
//!
//! * [`MontgomeryCtx::mont_mul`] — `REDC(ã·b̃) = (a·b)·R mod n`,
//! * [`MontgomeryCtx::mont_pow`] — windowed square-and-multiply staying in
//!   form for the whole chain,
//! * [`MontgomeryCtx::pow`] — the drop-in `base^exp mod n` that
//!   [`BigUint::modpow`] dispatches to for odd moduli.
//!
//! # REDC invariants
//!
//! The context is only constructible for **odd** `n > 0`
//! ([`MontgomeryCtx::new`] returns `None` otherwise): REDC needs
//! `gcd(n, R) = 1` so that `n′ = −n⁻¹ mod 2^64` exists. Form values are
//! always kept in `[0, n)`; `mont_mul` asserts this of its operands and
//! re-establishes it for its result (CIOS leaves at most one conditional
//! final subtraction). Conversion in is `to_mont(x) = REDC(x·R²)` via the
//! precomputed `R² mod n`; conversion out is `from_mont(x̃) = REDC(x̃)`.
//! The map `x ↦ x·R mod n` is a bijection on `[0, n)`, so form-domain
//! equality is plain equality — the Miller–Rabin loop in [`crate::prime`]
//! compares against `1` and `n−1` without ever leaving form.
//!
//! Everything here is **bit-identical** to the naive reference paths
//! ([`BigUint::modpow_naive`], [`BigUint::modmul`]) on the same operands —
//! pinned by the `fast_paths` proptest suite. Like the rest of the crate
//! it is *not* constant-time.

use crate::fixed_base::window_digit;
use crate::BigUint;

/// Window width (bits) for [`MontgomeryCtx::mont_pow`]'s digit table.
const POW_WINDOW_BITS: usize = 4;

/// Below this exponent bit length `mont_pow` uses plain binary
/// square-and-multiply — a 15-entry window table costs more than it saves.
const POW_WINDOW_THRESHOLD_BITS: usize = 16;

/// Precomputed Montgomery (REDC) context for one odd modulus.
///
/// Construction pays two Knuth divisions (`R mod n`, `R² mod n`) and a
/// Newton–Hensel word inversion; every subsequent multiplication under the
/// modulus is division-free. Build one per long-lived modulus (a Paillier
/// `n²`, a prime-candidate under test) and reuse it across calls.
///
/// ```
/// use dpe_bignum::{BigUint, MontgomeryCtx};
///
/// let m = BigUint::from(1_000_000_007u64); // odd
/// let ctx = MontgomeryCtx::new(&m).unwrap();
/// let base = BigUint::from(3u64);
/// let exp = BigUint::from(1_234_567u64);
/// assert_eq!(ctx.pow(&base, &exp), base.modpow_naive(&exp, &m));
/// assert!(MontgomeryCtx::new(&BigUint::from(10u64)).is_none()); // even
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MontgomeryCtx {
    modulus: BigUint,
    /// Limb count `k` of the modulus; `R = 2^(64k)`.
    limbs: usize,
    /// `−modulus⁻¹ mod 2^64`, the REDC quotient multiplier.
    n0inv: u64,
    /// `R mod n` — the Montgomery form of `1`.
    one: BigUint,
    /// `R² mod n` — multiplier taking a value *into* form via one REDC.
    r2: BigUint,
}

impl MontgomeryCtx {
    /// Builds a context for an odd modulus; returns `None` when `modulus`
    /// is zero or even (REDC requires `gcd(modulus, 2^64) = 1`).
    pub fn new(modulus: &BigUint) -> Option<MontgomeryCtx> {
        if modulus.is_zero() || modulus.is_even() {
            return None;
        }
        let limbs = modulus.limbs().len();
        let n0 = modulus.limbs()[0];
        // Newton–Hensel lifting: for odd n0 the seed is correct to 3 bits
        // and every step doubles the valid bit count, so 6 steps cover 64.
        let mut inv = n0;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let r = &BigUint::one() << (64 * limbs);
        let one = &r % modulus;
        let r2 = &(&r * &r) % modulus;
        Some(MontgomeryCtx {
            modulus: modulus.clone(),
            limbs,
            n0inv: inv.wrapping_neg(),
            one,
            r2,
        })
    }

    /// The modulus this context reduces under.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// The Montgomery form of `1` (`R mod n`) — the neutral element for
    /// [`MontgomeryCtx::mont_mul`] chains.
    pub fn one(&self) -> &BigUint {
        &self.one
    }

    /// Takes `x` into Montgomery form: `x·R mod n`. `x` may be arbitrarily
    /// large; it is reduced first.
    pub fn to_mont(&self, x: &BigUint) -> BigUint {
        let reduced = x % &self.modulus;
        self.redc_mul(&reduced, &self.r2)
    }

    /// Takes a form value back to the ordinary residue: `REDC(x̃) = x mod n`.
    pub fn from_mont(&self, x: &BigUint) -> BigUint {
        debug_assert!(x < &self.modulus, "from_mont operand must be in [0, n)");
        self.redc_mul(x, &BigUint::one())
    }

    /// Montgomery product of two form values: `REDC(ã·b̃) = (a·b)·R mod n`.
    ///
    /// # Panics
    ///
    /// Panics when either operand is not reduced (`≥ n`) — form values
    /// must stay in `[0, n)` for the CIOS bound to hold.
    pub fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        assert!(
            a < &self.modulus && b < &self.modulus,
            "mont_mul operands must be reduced into [0, n)"
        );
        self.redc_mul(a, b)
    }

    /// CIOS (coarsely integrated operand scanning) Montgomery
    /// multiplication: interleaves the product accumulation with the REDC
    /// word-reductions, keeping the working vector at `k + 2` limbs.
    fn redc_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let k = self.limbs;
        let n = self.modulus.limbs();
        let mut t = vec![0u64; k + 2];
        for i in 0..k {
            let ai = a.limbs().get(i).copied().unwrap_or(0);
            // t += ai · b
            let mut carry = 0u64;
            for (j, tj) in t.iter_mut().enumerate().take(k) {
                let bj = b.limbs().get(j).copied().unwrap_or(0);
                let cur = *tj as u128 + ai as u128 * bj as u128 + carry as u128;
                *tj = cur as u64;
                carry = (cur >> 64) as u64;
            }
            let cur = t[k] as u128 + carry as u128;
            t[k] = cur as u64;
            t[k + 1] = (cur >> 64) as u64;
            // m = t[0]·n′ mod 2^64 makes t + m·n divisible by 2^64;
            // accumulate and shift one word in the same pass.
            let m = t[0].wrapping_mul(self.n0inv);
            let cur = t[0] as u128 + m as u128 * n[0] as u128;
            debug_assert_eq!(cur as u64, 0);
            let mut carry = (cur >> 64) as u64;
            for j in 1..k {
                let cur = t[j] as u128 + m as u128 * n[j] as u128 + carry as u128;
                t[j - 1] = cur as u64;
                carry = (cur >> 64) as u64;
            }
            let cur = t[k] as u128 + carry as u128;
            t[k - 1] = cur as u64;
            let cur2 = t[k + 1] as u128 + (cur >> 64);
            t[k] = cur2 as u64;
            t[k + 1] = 0;
        }
        // CIOS bound: t < 2n, so one conditional subtraction restores [0, n).
        let mut result = BigUint::from_limbs(t);
        if result >= self.modulus {
            result = &result - &self.modulus;
        }
        result
    }

    /// Montgomery square of a form value.
    pub fn mont_sqr(&self, a: &BigUint) -> BigUint {
        self.mont_mul(a, a)
    }

    /// `base^exp` with `base` in Montgomery form; the result stays in form.
    ///
    /// Uses 4-bit windowed square-and-multiply for exponents of at least
    /// 16 bits, plain binary below that. `exp = 0` yields the form of `1`.
    ///
    /// The multiply schedule is *constant-flow in the exponent bits*: both
    /// chains multiply on every step, selecting between the operand and
    /// the Montgomery form of 1 (an exact `mont_mul` identity, so results
    /// stay bit-identical) by indexing instead of branching. The exponent
    /// *bit length* still shapes the chain; callers pad exponents when
    /// that matters.
    pub fn mont_pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let bits = exp.bit_len();
        if bits == 0 {
            return self.one.clone();
        }
        if bits < POW_WINDOW_THRESHOLD_BITS {
            // Left-to-right binary: the table would cost more than the
            // window setup. `operands[0]` is the form of 1, so a zero bit
            // costs the same multiply as a set bit.
            let operands = [&self.one, base];
            let mut acc = base.clone();
            for i in (0..bits - 1).rev() {
                acc = self.mont_sqr(&acc);
                acc = self.mont_mul(&acc, operands[usize::from(exp.bit(i))]);
            }
            return acc;
        }
        let w = POW_WINDOW_BITS;
        // table[d] = base^d (in form) for digits d ∈ [0, 2^w); table[0] is
        // the form of 1 so a zero window multiplies like any other.
        let mut table = Vec::with_capacity(1 << w);
        table.push(self.one.clone());
        table.push(base.clone());
        for _ in 2..(1 << w) {
            let next = self.mont_mul(table.last().unwrap(), base);
            table.push(next);
        }
        let windows = bits.div_ceil(w);
        // The top window of a nonzero exponent is nonzero.
        let top = window_digit(exp, windows - 1, w);
        let mut acc = table[top].clone();
        for i in (0..windows - 1).rev() {
            for _ in 0..w {
                acc = self.mont_sqr(&acc);
            }
            let d = window_digit(exp, i, w);
            acc = self.mont_mul(&acc, &table[d]);
        }
        acc
    }

    /// The drop-in exponentiation: `base^exp mod n` on ordinary residues,
    /// converting in and out of form around a [`MontgomeryCtx::mont_pow`]
    /// chain. Bit-identical to [`BigUint::modpow_naive`].
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if self.modulus.is_one() {
            return BigUint::zero();
        }
        self.from_mont(&self.mont_pow(&self.to_mont(base), exp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn rejects_even_and_zero_moduli() {
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_none());
        assert!(MontgomeryCtx::new(&n(2)).is_none());
        assert!(MontgomeryCtx::new(&n(1_000_000)).is_none());
        assert!(MontgomeryCtx::new(&n(1)).is_some());
        assert!(MontgomeryCtx::new(&n(3)).is_some());
    }

    #[test]
    fn roundtrip_through_form() {
        let m = n(1_000_000_007);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        for v in [0u64, 1, 2, 12345, 999_999_999, 1_000_000_006] {
            let x = n(v);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&x)), x, "v = {v}");
        }
        // Values ≥ n reduce on the way in.
        assert_eq!(ctx.from_mont(&ctx.to_mont(&n(u64::MAX))), &n(u64::MAX) % &m);
    }

    #[test]
    fn mont_mul_matches_modmul() {
        let m = n(0xFFFF_FFFF_FFFF_FFC5); // largest 64-bit prime
        let ctx = MontgomeryCtx::new(&m).unwrap();
        for (a, b) in [(3u64, 5u64), (u64::MAX - 1, u64::MAX - 2), (1, 0)] {
            let (a, b) = (&n(a) % &m, &n(b) % &m);
            let got = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
            assert_eq!(got, a.modmul(&b, &m));
        }
    }

    #[test]
    fn pow_matches_naive_multi_limb() {
        let m = &(BigUint::one() << 256usize) - &n(189); // odd
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let base = &(BigUint::one() << 200usize) + &n(12345);
        for shift in [0usize, 1, 63, 64, 127, 128, 255] {
            let exp = &(BigUint::one() << shift) + &n(7);
            assert_eq!(
                ctx.pow(&base, &exp),
                base.modpow_naive(&exp, &m),
                "shift {shift}"
            );
        }
    }

    #[test]
    fn pow_degenerate_operands() {
        let m = n(97);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        assert_eq!(ctx.pow(&n(5), &BigUint::zero()), BigUint::one());
        assert_eq!(ctx.pow(&BigUint::zero(), &n(5)), BigUint::zero());
        assert_eq!(ctx.pow(&BigUint::zero(), &BigUint::zero()), BigUint::one());
        assert_eq!(ctx.pow(&n(97), &n(3)), BigUint::zero()); // base ≡ 0
    }

    #[test]
    fn modulus_one_collapses_to_zero() {
        let ctx = MontgomeryCtx::new(&BigUint::one()).unwrap();
        assert_eq!(ctx.pow(&n(5), &n(3)), BigUint::zero());
        assert_eq!(ctx.pow(&n(5), &BigUint::zero()), BigUint::zero());
        assert_eq!(ctx.from_mont(&ctx.to_mont(&n(42))), BigUint::zero());
    }

    #[test]
    fn fermat_little_in_form() {
        let p = n(1_000_000_007);
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let p1 = &p - &BigUint::one();
        for a in [2u64, 3, 12345, 999_999_999] {
            assert_eq!(ctx.pow(&n(a), &p1), BigUint::one());
            // And without leaving form: mont_pow(ã, p−1) is the form of 1.
            let a_m = ctx.to_mont(&n(a));
            assert_eq!(ctx.mont_pow(&a_m, &p1), *ctx.one());
        }
    }

    #[test]
    #[should_panic(expected = "must be reduced")]
    fn unreduced_operand_panics() {
        let ctx = MontgomeryCtx::new(&n(97)).unwrap();
        ctx.mont_mul(&n(97), &n(1));
    }

    #[test]
    fn window_and_binary_pow_agree_at_threshold() {
        // Exponents straddling POW_WINDOW_THRESHOLD_BITS take different
        // internal paths; both must match the naive reference.
        let m = n(1_000_000_007);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let base = n(123_456_789);
        for bits in [14usize, 15, 16, 17] {
            let exp = &(BigUint::one() << bits) - &BigUint::one();
            assert_eq!(
                ctx.pow(&base, &exp),
                base.modpow_naive(&exp, &m),
                "bits {bits}"
            );
        }
    }
}
