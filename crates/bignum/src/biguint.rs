//! The [`BigUint`] type: representation, construction, conversion, ordering.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian `u64` limbs with no trailing zero limbs, so two
/// equal values always have identical limb vectors and `Eq`/`Hash` derive
/// correctly. Zero is the empty limb vector.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// The value `2`.
    pub fn two() -> Self {
        BigUint { limbs: vec![2] }
    }

    /// Builds a value from little-endian limbs, dropping trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Read-only view of the little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// `true` iff the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is `1`.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// `true` iff the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// `true` iff the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (`0` for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(hi) => self.limbs.len() * 64 - hi.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian indexing); out-of-range bits are `0`.
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Converts to `u64`, returning `None` on overflow.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128`, returning `None` on overflow.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Big-endian byte encoding with no leading zero bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..first_nonzero);
        out
    }

    /// Parses a big-endian byte string (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut buf = [0u8; 8];
            buf[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(buf));
        }
        BigUint::from_limbs(limbs)
    }

    /// Parses a hexadecimal string (no `0x` prefix, case-insensitive).
    pub fn from_hex(s: &str) -> Result<Self, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError::Empty);
        }
        let mut value = BigUint::zero();
        for ch in s.chars() {
            let digit = ch.to_digit(16).ok_or(ParseBigUintError::InvalidDigit(ch))?;
            value = &(&value << 4usize) + &BigUint::from(digit as u64);
        }
        Ok(value)
    }

    /// Hexadecimal encoding without a prefix; `"0"` for zero.
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let mut s = format!("{:x}", self.limbs.last().unwrap());
        for limb in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{limb:016x}"));
        }
        s
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_limbs(vec![v])
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(v as u64)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        non_eq => return non_eq,
                    }
                }
                Ordering::Equal
            }
            non_eq => non_eq,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

impl fmt::Display for BigUint {
    /// Decimal rendering via repeated division by 10^19 (the largest power of
    /// ten fitting a limb), so the cost is quadratic in limb count but with a
    /// large constant divisor — fine for logging and tests.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const CHUNK: u64 = 10_000_000_000_000_000_000; // 10^19
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut parts: Vec<u64> = Vec::new();
        let mut rest = self.clone();
        let chunk = BigUint::from(CHUNK);
        while !rest.is_zero() {
            let (q, r) = rest.div_rem(&chunk);
            parts.push(r.to_u64().expect("remainder below 10^19 fits in u64"));
            rest = q;
        }
        let mut s = parts.last().unwrap().to_string();
        for part in parts.iter().rev().skip(1) {
            s.push_str(&format!("{part:019}"));
        }
        write!(f, "{s}")
    }
}

/// Error produced when parsing a [`BigUint`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBigUintError {
    /// The input string was empty.
    Empty,
    /// The input contained a character that is not a digit in the radix.
    InvalidDigit(char),
}

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBigUintError::Empty => write!(f, "empty string"),
            ParseBigUintError::InvalidDigit(c) => write!(f, "invalid digit {c:?}"),
        }
    }
}

impl std::error::Error for ParseBigUintError {}

impl FromStr for BigUint {
    type Err = ParseBigUintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseBigUintError::Empty);
        }
        let ten = BigUint::from(10u64);
        let mut value = BigUint::zero();
        for ch in s.chars() {
            let digit = ch.to_digit(10).ok_or(ParseBigUintError::InvalidDigit(ch))?;
            value = &(&value * &ten) + &BigUint::from(digit as u64);
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_normalized() {
        assert!(BigUint::from_limbs(vec![0, 0, 0]).is_zero());
        assert_eq!(BigUint::zero().limbs().len(), 0);
        assert_eq!(BigUint::zero().bit_len(), 0);
    }

    #[test]
    fn bit_len_matches_u64() {
        for v in [1u64, 2, 3, 255, 256, u64::MAX] {
            assert_eq!(BigUint::from(v).bit_len(), 64 - v.leading_zeros() as usize);
        }
        assert_eq!(BigUint::from(u128::MAX).bit_len(), 128);
    }

    #[test]
    fn ordering_by_magnitude() {
        let small = BigUint::from(u64::MAX);
        let big = BigUint::from(u64::MAX as u128 + 1);
        assert!(small < big);
        assert!(big > small);
        assert_eq!(big.clone().cmp(&big), Ordering::Equal);
    }

    #[test]
    fn bytes_be_strips_leading_zeros() {
        let v = BigUint::from(0x01_02_03u64);
        assert_eq!(v.to_bytes_be(), vec![1, 2, 3]);
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 1, 2, 3]), v);
        assert_eq!(BigUint::zero().to_bytes_be(), Vec::<u8>::new());
    }

    #[test]
    fn display_small_and_large() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(BigUint::from(12345u64).to_string(), "12345");
        // 2^128 = 340282366920938463463374607431768211456
        let v = &(&BigUint::from(u128::MAX) + &BigUint::one());
        assert_eq!(v.to_string(), "340282366920938463463374607431768211456");
    }

    #[test]
    fn parse_decimal() {
        let v: BigUint = "340282366920938463463374607431768211456".parse().unwrap();
        assert_eq!(v, &BigUint::from(u128::MAX) + &BigUint::one());
        assert!("".parse::<BigUint>().is_err());
        assert!("12a".parse::<BigUint>().is_err());
    }

    #[test]
    fn hex_roundtrip() {
        let v = BigUint::from_hex("deadbeefcafebabe1234567890abcdef").unwrap();
        assert_eq!(BigUint::from_hex(&v.to_hex()).unwrap(), v);
        assert_eq!(BigUint::zero().to_hex(), "0");
    }

    #[test]
    fn bit_access() {
        let v = BigUint::from(0b1010u64);
        assert!(!v.bit(0));
        assert!(v.bit(1));
        assert!(!v.bit(2));
        assert!(v.bit(3));
        assert!(!v.bit(64));
    }

    #[test]
    fn u128_conversions() {
        let v = BigUint::from(u128::MAX);
        assert_eq!(v.to_u128(), Some(u128::MAX));
        assert_eq!(v.to_u64(), None);
        assert_eq!(BigUint::from(7u64).to_u64(), Some(7));
    }
}
