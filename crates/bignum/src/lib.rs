//! # dpe-bignum — arbitrary-precision integers
//!
//! A small, dependency-free big-integer library implementing exactly what the
//! Paillier cryptosystem (the paper's HOM class, Fig. 1) needs:
//!
//! * [`BigUint`]: unsigned magnitudes with schoolbook add/sub/mul and Knuth
//!   Algorithm D division,
//! * modular arithmetic: [`BigUint::modpow`], [`BigUint::modinv`], gcd/lcm,
//! * Montgomery (REDC) form via [`MontgomeryCtx`] — division-free
//!   `mont_mul`/`mont_pow` chains for odd moduli that [`BigUint::modpow`],
//!   [`FixedBaseTable`], and the Miller–Rabin rounds dispatch to, pinned
//!   bit-identical to the naive paths,
//! * Straus/Shamir simultaneous multi-exponentiation ([`multi_modpow`])
//!   for `∏ bᵢ^eᵢ mod m` on one shared squaring chain,
//! * fixed-base windowed exponentiation via precomputed tables
//!   ([`FixedBaseTable`]), the offline/online split the batched Paillier
//!   encryption engine amortizes its hot path with,
//! * probabilistic primality testing (Miller–Rabin) and random prime
//!   generation in [`prime`],
//! * uniform random sampling below a bound in [`random`].
//!
//! The representation is a little-endian vector of `u64` limbs with no
//! trailing zero limbs (a *normalized* form), so `BigUint::zero()` has zero
//! limbs. All arithmetic is value-semantics over borrowed operands; operators
//! are implemented for `&BigUint` to avoid accidental clones in hot loops.
//!
//! This is a reference implementation for reproducing the mining semantics of
//! the ICDE 2018 DPE paper — it is **not** constant-time and must not be used
//! to protect real data.

#![forbid(unsafe_code)]

mod arith;
mod biguint;
mod fixed_base;
mod int;
mod modular;
mod montgomery;
mod multi_exp;
pub mod prime;
pub mod random;

pub use biguint::{BigUint, ParseBigUintError};
pub use fixed_base::FixedBaseTable;
pub use int::{BigInt, Sign};
pub use montgomery::MontgomeryCtx;
pub use multi_exp::{multi_modpow, multi_modpow_ctx};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_biguint(max_limbs: usize) -> impl Strategy<Value = BigUint> {
        proptest::collection::vec(any::<u64>(), 0..=max_limbs).prop_map(BigUint::from_limbs)
    }

    proptest! {
        #[test]
        fn add_commutes(a in arb_biguint(6), b in arb_biguint(6)) {
            prop_assert_eq!(&a + &b, &b + &a);
        }

        #[test]
        fn add_associates(a in arb_biguint(4), b in arb_biguint(4), c in arb_biguint(4)) {
            prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        }

        #[test]
        fn mul_commutes(a in arb_biguint(5), b in arb_biguint(5)) {
            prop_assert_eq!(&a * &b, &b * &a);
        }

        #[test]
        fn mul_distributes(a in arb_biguint(4), b in arb_biguint(4), c in arb_biguint(4)) {
            prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        }

        #[test]
        fn sub_inverts_add(a in arb_biguint(6), b in arb_biguint(6)) {
            let sum = &a + &b;
            prop_assert_eq!(&sum - &b, a);
        }

        #[test]
        fn divrem_reconstructs(a in arb_biguint(8), b in arb_biguint(4)) {
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert!(r < b);
            prop_assert_eq!(&(&q * &b) + &r, a);
        }

        #[test]
        fn shift_roundtrip(a in arb_biguint(5), s in 0usize..200) {
            prop_assert_eq!(&(&a << s) >> s, a);
        }

        #[test]
        fn bytes_roundtrip(a in arb_biguint(6)) {
            let bytes = a.to_bytes_be();
            prop_assert_eq!(BigUint::from_bytes_be(&bytes), a);
        }

        #[test]
        fn decimal_roundtrip(a in arb_biguint(4)) {
            let s = a.to_string();
            prop_assert_eq!(s.parse::<BigUint>().unwrap(), a);
        }

        #[test]
        fn modpow_matches_naive(b in 0u64..1000, e in 0u32..24, m in 2u64..10_000) {
            let mut expect = 1u128;
            for _ in 0..e {
                expect = expect * (b as u128 % m as u128) % m as u128;
            }
            let got = BigUint::from(b).modpow(&BigUint::from(e as u64), &BigUint::from(m));
            prop_assert_eq!(got, BigUint::from(expect as u64));
        }

        #[test]
        fn gcd_divides_both(a in arb_biguint(4), b in arb_biguint(4)) {
            prop_assume!(!a.is_zero() && !b.is_zero());
            let g = a.gcd(&b);
            prop_assert!((&a % &g).is_zero());
            prop_assert!((&b % &g).is_zero());
        }

        #[test]
        fn fixed_base_table_matches_modpow(
            base in arb_biguint(3),
            exp in arb_biguint(2),
            m in arb_biguint(3),
            window in 1usize..=8,
        ) {
            prop_assume!(!m.is_zero());
            let table = FixedBaseTable::with_window(&base, &m, 128, window);
            prop_assert_eq!(table.pow(&exp), base.modpow(&exp, &m));
        }

        #[test]
        fn modinv_is_inverse(a in 1u64..1_000_000, m in 2u64..1_000_000) {
            let a = BigUint::from(a);
            let m = BigUint::from(m);
            if a.gcd(&m).is_one() {
                let inv = a.modinv(&m).expect("coprime values must be invertible");
                prop_assert_eq!((&a * &inv) % &m, BigUint::one());
            } else {
                prop_assert!(a.modinv(&m).is_none());
            }
        }
    }
}
