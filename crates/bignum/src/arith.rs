//! Core arithmetic on [`BigUint`]: add, sub, mul, div/rem, shifts, pow.
//!
//! Division is Knuth's Algorithm D (TAOCP vol. 2, 4.3.1) on 64-bit digits
//! with 128-bit intermediates. Multiplication is schoolbook — operand sizes
//! in this workspace (≤ 4096 bits for Paillier n²) stay well below the
//! Karatsuba crossover for our access patterns.

use crate::BigUint;
use std::ops::{Add, Div, Mul, Rem, Shl, Shr, Sub};

impl BigUint {
    /// `self + other`.
    pub fn add_ref(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// `self - other`; panics if `other > self` (unsigned underflow).
    pub fn sub_ref(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        BigUint::from_limbs(out)
    }

    /// Saturating subtraction: returns `0` when `other > self`.
    pub fn saturating_sub(&self, other: &BigUint) -> BigUint {
        if self < other {
            BigUint::zero()
        } else {
            self.sub_ref(other)
        }
    }

    /// `self * other` (schoolbook).
    pub fn mul_ref(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Quotient and remainder of `self / divisor`; panics on division by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, BigUint::from(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Short division by a single limb.
    fn div_rem_u64(&self, divisor: u64) -> (BigUint, u64) {
        let mut quotient = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            quotient[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        (BigUint::from_limbs(quotient), rem as u64)
    }

    /// Knuth Algorithm D for multi-limb divisors.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        const BASE: u128 = 1 << 64;
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let v = divisor << shift; // normalized: top bit of top limb set
        let mut u = (self << shift).limbs;
        let n = v.limbs.len();
        let m = u.len() - n;
        u.push(0); // u has m + n + 1 digits

        let v_hi = v.limbs[n - 1];
        let v_next = v.limbs[n - 2];
        let mut q = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            // Estimate q̂ = (u[j+n]·B + u[j+n-1]) / v[n-1] and correct it
            // until q̂·v[n-2] ≤ B·r̂ + u[j+n-2]; q̂ is then off by at most 1.
            let top = (u[j + n] as u128) << 64 | u[j + n - 1] as u128;
            let mut qhat = top / v_hi as u128;
            let mut rhat = top % v_hi as u128;
            while qhat >= BASE || qhat * v_next as u128 > (rhat << 64 | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v_hi as u128;
                if rhat >= BASE {
                    break;
                }
            }

            // Multiply-and-subtract q̂·v from u[j .. j+n], tracking borrow.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * v.limbs[i] as u128 + carry;
                carry = p >> 64;
                let sub = u[j + i] as i128 - (p as u64) as i128 + borrow;
                u[j + i] = sub as u64;
                borrow = sub >> 64;
            }
            let sub = u[j + n] as i128 - carry as i128 + borrow;
            u[j + n] = sub as u64;
            borrow = sub >> 64;

            // Rare "add back" correction when q̂ was one too large.
            if borrow < 0 {
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = u[j + i] as u128 + v.limbs[i] as u128 + carry;
                    u[j + i] = s as u64;
                    carry = s >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u64);
            }
            q[j] = qhat as u64;
        }

        let rem = BigUint::from_limbs(u[..n].to_vec()) >> shift;
        (BigUint::from_limbs(q), rem)
    }

    /// `self ^ exp` by binary exponentiation (non-modular; grows quickly).
    pub fn pow(&self, mut exp: u64) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $impl_fn:ident) => {
        impl $trait<&BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                self.$impl_fn(rhs)
            }
        }
        impl $trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                (&self).$impl_fn(&rhs)
            }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                (&self).$impl_fn(rhs)
            }
        }
    };
}

forward_binop!(Add, add, add_ref);
forward_binop!(Sub, sub, sub_ref);
forward_binop!(Mul, mul, mul_ref);

impl Div<&BigUint> for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}

impl Rem<&BigUint> for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl Rem<&BigUint> for BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, shift: usize) -> BigUint {
        if self.is_zero() || shift == 0 {
            return self.clone();
        }
        let (limb_shift, bit_shift) = (shift / 64, shift % 64);
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push(l << bit_shift | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, shift: usize) -> BigUint {
        let (limb_shift, bit_shift) = (shift / 64, shift % 64);
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut out = self.limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            let mut carry = 0u64;
            for l in out.iter_mut().rev() {
                let new_carry = *l << (64 - bit_shift);
                *l = *l >> bit_shift | carry;
                carry = new_carry;
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shl<usize> for BigUint {
    type Output = BigUint;
    fn shl(self, shift: usize) -> BigUint {
        &self << shift
    }
}

impl Shr<usize> for BigUint {
    type Output = BigUint;
    fn shr(self, shift: usize) -> BigUint {
        &self >> shift
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;

    fn n(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn add_with_carry_chain() {
        let a = n(u128::MAX);
        let sum = &a + &BigUint::one();
        assert_eq!(sum.limbs(), &[0, 0, 1]);
    }

    #[test]
    fn sub_with_borrow_chain() {
        let a = BigUint::from_limbs(vec![0, 0, 1]); // 2^128
        assert_eq!(&a - &BigUint::one(), n(u128::MAX));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &n(1) - &n(2);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(n(1).saturating_sub(&n(5)), BigUint::zero());
        assert_eq!(n(5).saturating_sub(&n(1)), n(4));
    }

    #[test]
    fn mul_matches_u128() {
        for (a, b) in [(0u128, 5), (7, 9), (u64::MAX as u128, u64::MAX as u128)] {
            assert_eq!(&n(a) * &n(b), n(a * b));
        }
    }

    #[test]
    fn mul_large() {
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let a = n(u128::MAX);
        let sq = &a * &a;
        let expect =
            &(&(BigUint::one() << 256usize) - &(BigUint::one() << 129usize)) + &BigUint::one();
        assert_eq!(sq, expect);
    }

    #[test]
    fn div_rem_single_limb() {
        let a = n(1_000_000_007u128 * 97 + 13);
        let (q, r) = a.div_rem(&n(1_000_000_007));
        assert_eq!(q, n(97));
        assert_eq!(r, n(13));
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = BigUint::from_hex("100000000000000000000000000000000000000001").unwrap();
        let b = BigUint::from_hex("ffffffffffffffffffffff").unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    fn div_rem_exercises_add_back() {
        // Constructed so the q̂ estimate overshoots: u = B^2·(B-1), v = B·(B-1)+1.
        let b_minus_1 = u64::MAX;
        let u = BigUint::from_limbs(vec![0, 0, b_minus_1]);
        let v = BigUint::from_limbs(vec![1, b_minus_1]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r < v);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = n(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn shifts() {
        let v = n(0b1011);
        assert_eq!(&v << 1usize, n(0b10110));
        assert_eq!(&v << 64usize, BigUint::from_limbs(vec![0, 0b1011]));
        assert_eq!(&v >> 2usize, n(0b10));
        assert_eq!(&v >> 200usize, BigUint::zero());
        assert_eq!(&(&v << 67usize) >> 67usize, v);
    }

    #[test]
    fn pow_small() {
        assert_eq!(n(3).pow(0), BigUint::one());
        assert_eq!(n(3).pow(5), n(243));
        assert_eq!(n(2).pow(130), BigUint::one() << 130usize);
    }
}
