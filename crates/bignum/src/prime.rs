//! Primality testing and random prime generation.
//!
//! Paillier key generation needs random primes of a few hundred bits. We use
//! trial division by small primes as a cheap filter, then Miller–Rabin with
//! random bases. For inputs below 2^64 the fixed witness set
//! `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}` makes the test
//! deterministic (Sorenson & Webster, 2015).
//!
//! Candidates surviving trial division are odd, so all Miller–Rabin rounds
//! for one candidate share a single [`MontgomeryCtx`] and run their
//! exponentiation and squaring chains division-free in REDC form.

use crate::random::uniform_below;
use crate::{BigUint, MontgomeryCtx};
use rand::RngCore;

/// Small primes used for trial-division screening.
const SMALL_PRIMES: [u64; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Deterministic witness set for 64-bit inputs.
const DET_WITNESSES: [u64; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];

/// Number of random Miller–Rabin rounds for larger candidates
/// (error probability ≤ 4^-24 per composite).
const MR_ROUNDS: usize = 24;

/// Probabilistic primality test.
///
/// Deterministic for `n < 2^64`; otherwise Miller–Rabin with `MR_ROUNDS`
/// random bases drawn from `rng`.
pub fn is_prime<R: RngCore>(n: &BigUint, rng: &mut R) -> bool {
    if n < &BigUint::two() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let p = BigUint::from(p);
        if n == &p {
            return true;
        }
        if (n % &p).is_zero() {
            return false;
        }
    }

    // Write n - 1 = d · 2^s with d odd.
    let n_minus_1 = n - &BigUint::one();
    let s = trailing_zeros(&n_minus_1);
    let d = &n_minus_1 >> s;

    // Past the trial-division filter n is odd, so every round can share
    // one Montgomery context: the whole witness chain — exponentiation and
    // repeated squaring — runs division-free in REDC form. Montgomery form
    // is a bijection on [0, n), so comparing against the form-values of 1
    // and n−1 is equivalent to comparing ordinary residues.
    let ctx = MontgomeryCtx::new(n).expect("candidate is odd after trial division");
    let minus_one_m = ctx.to_mont(&n_minus_1);

    if n.bit_len() <= 64 {
        DET_WITNESSES
            .iter()
            .all(|&a| miller_rabin_round(&ctx, &minus_one_m, &d, s, &BigUint::from(a)))
    } else {
        let hi = n - &BigUint::two(); // witnesses in [2, n-2]
        (0..MR_ROUNDS).all(|_| {
            let a = &uniform_below(&(&hi - &BigUint::one()), rng) + &BigUint::two();
            miller_rabin_round(&ctx, &minus_one_m, &d, s, &a)
        })
    }
}

/// One Miller–Rabin round, entirely in Montgomery form: returns `true`
/// when `a` is *not* a witness of compositeness (i.e. `n` is still
/// possibly prime). `minus_one_m` is the form-value of `n − 1`.
fn miller_rabin_round(
    ctx: &MontgomeryCtx,
    minus_one_m: &BigUint,
    d: &BigUint,
    s: usize,
    a: &BigUint,
) -> bool {
    let mut x = ctx.mont_pow(&ctx.to_mont(a), d);
    if &x == ctx.one() || &x == minus_one_m {
        return true;
    }
    for _ in 1..s {
        x = ctx.mont_sqr(&x);
        if &x == minus_one_m {
            return true;
        }
        if &x == ctx.one() {
            return false; // non-trivial square root of 1
        }
    }
    false
}

fn trailing_zeros(n: &BigUint) -> usize {
    debug_assert!(!n.is_zero());
    let mut count = 0;
    for &limb in n.limbs() {
        if limb == 0 {
            count += 64;
        } else {
            return count + limb.trailing_zeros() as usize;
        }
    }
    count
}

/// Generates a random prime with exactly `bits` significant bits.
///
/// The top two bits are forced to 1 (so products of two such primes have
/// exactly `2·bits` bits, as Paillier keygen expects) and the low bit is
/// forced to 1. Panics if `bits < 3`.
pub fn gen_prime<R: RngCore>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 3, "prime size must be at least 3 bits");
    loop {
        let mut bytes = vec![0u8; bits.div_ceil(8)];
        rng.fill_bytes(&mut bytes);
        let mut candidate = BigUint::from_bytes_be(&bytes) >> (bytes.len() * 8 - bits);
        // Force exact bit length, a second-highest bit, and oddness.
        candidate =
            &candidate | &(&(&BigUint::one() << (bits - 1)) | &(&BigUint::one() << (bits - 2)));
        candidate = &candidate | &BigUint::one();
        if is_prime(&candidate, rng) {
            return candidate;
        }
    }
}

impl std::ops::BitOr<&BigUint> for &BigUint {
    type Output = BigUint;
    fn bitor(self, rhs: &BigUint) -> BigUint {
        let (long, short) = if self.limbs().len() >= rhs.limbs().len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut limbs = long.limbs().to_vec();
        for (i, &l) in short.limbs().iter().enumerate() {
            limbs[i] |= l;
        }
        BigUint::from_limbs(limbs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD15EA5E)
    }

    #[test]
    fn small_primes_recognized() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 251, 257, 65_537, 1_000_000_007] {
            assert!(is_prime(&BigUint::from(p), &mut r), "{p} is prime");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng();
        for c in [0u64, 1, 4, 9, 255, 1_000_000_008, 65_536] {
            assert!(!is_prime(&BigUint::from(c), &mut r), "{c} is composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // 561, 1105, 1729 … fool Fermat but not Miller–Rabin.
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 825_265] {
            assert!(!is_prime(&BigUint::from(c), &mut r), "{c} is Carmichael");
        }
    }

    #[test]
    fn strong_pseudoprimes_to_base_2_rejected() {
        let mut r = rng();
        for c in [2047u64, 3277, 4033, 4681, 8321, 15841, 29341] {
            assert!(
                !is_prime(&BigUint::from(c), &mut r),
                "{c} fools base 2 only"
            );
        }
    }

    #[test]
    fn known_large_prime_accepted() {
        // 2^89 - 1 is a Mersenne prime.
        let mut r = rng();
        let p = &(BigUint::one() << 89usize) - &BigUint::one();
        assert!(is_prime(&p, &mut r));
        // 2^67 - 1 = 193707721 × 761838257287 is not.
        let c = &(BigUint::one() << 67usize) - &BigUint::one();
        assert!(!is_prime(&c, &mut r));
    }

    #[test]
    fn gen_prime_has_exact_bit_length() {
        let mut r = rng();
        for bits in [16usize, 32, 64, 128] {
            let p = gen_prime(bits, &mut r);
            assert_eq!(p.bit_len(), bits);
            assert!(p.is_odd());
            assert!(is_prime(&p, &mut r));
        }
    }

    #[test]
    fn gen_prime_product_has_double_bits() {
        let mut r = rng();
        let p = gen_prime(96, &mut r);
        let q = gen_prime(96, &mut r);
        assert_eq!((&p * &q).bit_len(), 192);
    }
}
