//! Uniform random sampling of big integers.

use crate::BigUint;
use rand::RngCore;

/// Samples uniformly from `[0, bound)` by rejection on the top limb.
///
/// Panics if `bound` is zero.
pub fn uniform_below<R: RngCore>(bound: &BigUint, rng: &mut R) -> BigUint {
    assert!(!bound.is_zero(), "sampling bound must be positive");
    let bits = bound.bit_len();
    let bytes = bits.div_ceil(8);
    let excess_bits = bytes * 8 - bits;
    let mut buf = vec![0u8; bytes];
    loop {
        rng.fill_bytes(&mut buf);
        buf[0] &= 0xFF >> excess_bits; // candidate < 2^bits, so P(accept) > 1/2
        let candidate = BigUint::from_bytes_be(&buf);
        if &candidate < bound {
            return candidate;
        }
    }
}

/// Samples uniformly from `[lo, hi)`. Panics when `lo >= hi`.
pub fn uniform_range<R: RngCore>(lo: &BigUint, hi: &BigUint, rng: &mut R) -> BigUint {
    assert!(lo < hi, "empty sampling range");
    lo + &uniform_below(&(hi - lo), rng)
}

/// Samples a uniform element of the multiplicative group `(ℤ/nℤ)*`,
/// i.e. a value in `[1, n)` coprime to `n`. Used for Paillier randomness.
pub fn uniform_coprime<R: RngCore>(n: &BigUint, rng: &mut R) -> BigUint {
    assert!(n > &BigUint::one(), "modulus must exceed 1");
    loop {
        let candidate = uniform_range(&BigUint::one(), n, rng);
        if candidate.gcd(n).is_one() {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn uniform_below_stays_in_range() {
        let mut r = rng();
        let bound = BigUint::from(1000u64);
        for _ in 0..500 {
            assert!(uniform_below(&bound, &mut r) < bound);
        }
    }

    #[test]
    fn uniform_below_covers_small_domain() {
        let mut r = rng();
        let bound = BigUint::from(4u64);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = uniform_below(&bound, &mut r).to_u64().unwrap() as usize;
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear: {seen:?}"
        );
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let mut r = rng();
        let lo = BigUint::from(100u64);
        let hi = BigUint::from(110u64);
        for _ in 0..200 {
            let v = uniform_range(&lo, &hi, &mut r);
            assert!(v >= lo && v < hi);
        }
    }

    #[test]
    fn uniform_coprime_is_coprime() {
        let mut r = rng();
        let n = BigUint::from(36u64);
        for _ in 0..100 {
            let v = uniform_coprime(&n, &mut r);
            assert!(v.gcd(&n).is_one());
            assert!(v >= BigUint::one() && v < n);
        }
    }

    #[test]
    fn large_bound_sampling() {
        let mut r = rng();
        let bound = BigUint::one() << 521usize;
        let sample = uniform_below(&bound, &mut r);
        assert!(sample < bound);
        assert!(
            sample.bit_len() > 400,
            "overwhelmingly likely for uniform draw"
        );
    }

    #[test]
    #[should_panic(expected = "empty sampling range")]
    fn empty_range_panics() {
        let mut r = rng();
        let v = BigUint::from(5u64);
        uniform_range(&v, &v, &mut r);
    }
}
