//! Modular arithmetic: modpow, gcd, lcm, and modular inverse.
//!
//! All four reduction primitives (`modadd`/`modsub`/`modmul`/`modpow`)
//! share one contract: a zero modulus is a caller bug and fails a
//! documented assert with a clear message — never a raw divide-by-zero
//! surfacing from the limb layer.

use crate::montgomery::MontgomeryCtx;
use crate::{BigInt, BigUint};

/// Exponent bit length at which [`BigUint::modpow`] switches from the
/// schoolbook binary ladder to a Montgomery (REDC) chain for odd moduli.
/// Below this the two Knuth divisions spent building the context outweigh
/// the division-free multiplications it buys.
const MONTGOMERY_EXP_THRESHOLD_BITS: usize = 32;

impl BigUint {
    /// `(self + other) mod m`.
    ///
    /// # Panics
    ///
    /// Panics when `m` is zero.
    pub fn modadd(&self, other: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modadd modulus must be nonzero");
        &(self + other) % m
    }

    /// `(self - other) mod m`, wrapping into `[0, m)`.
    ///
    /// # Panics
    ///
    /// Panics when `m` is zero.
    pub fn modsub(&self, other: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modsub modulus must be nonzero");
        let a = self % m;
        let b = other % m;
        if a >= b {
            &a - &b
        } else {
            &(&a + m) - &b
        }
    }

    /// `(self * other) mod m`.
    ///
    /// # Panics
    ///
    /// Panics when `m` is zero.
    pub fn modmul(&self, other: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modmul modulus must be nonzero");
        &(self * other) % m
    }

    /// `self ^ exp mod m`.
    ///
    /// For odd `m` and exponents of at least 32 bits this dispatches to a
    /// division-free Montgomery (REDC) chain via [`MontgomeryCtx`];
    /// everything else takes the schoolbook ladder. Both paths return
    /// bit-identical results — [`BigUint::modpow_naive`] is the pinned
    /// reference.
    ///
    /// `x^0 mod 1` is `0` (everything is `0` mod 1).
    ///
    /// # Panics
    ///
    /// Panics when `m` is zero.
    pub fn modpow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modpow modulus must be nonzero");
        if m.is_odd() && exp.bit_len() >= MONTGOMERY_EXP_THRESHOLD_BITS {
            if let Some(ctx) = MontgomeryCtx::new(m) {
                return ctx.pow(self, exp);
            }
        }
        self.modpow_naive(exp, m)
    }

    /// `self ^ exp mod m` by left-to-right binary exponentiation —
    /// the naive reference path the Montgomery fast path is pinned
    /// bit-identical against.
    ///
    /// # Panics
    ///
    /// Panics when `m` is zero.
    pub fn modpow_naive(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modpow modulus must be nonzero");
        if m.is_one() {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let mut base = self % m;
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = result.modmul(&base, m);
            }
            if i + 1 < exp.bit_len() {
                base = base.modmul(&base, m);
            }
        }
        result
    }

    /// Greatest common divisor (Euclid); `gcd(0, b) = b`.
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = &a % &b;
            a = std::mem::replace(&mut b, r);
        }
        a
    }

    /// Least common multiple; `lcm(0, b) = 0`.
    pub fn lcm(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let g = self.gcd(other);
        &(self / &g) * other
    }

    /// Modular inverse: the unique `x ∈ [0, m)` with `self·x ≡ 1 (mod m)`,
    /// or `None` when `gcd(self, m) ≠ 1`.
    pub fn modinv(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        // Extended Euclid over signed integers: track x with a·x ≡ r (mod m).
        let mut r0 = BigInt::from_biguint(self % m);
        let mut r1 = BigInt::from_biguint(m.clone());
        let mut x0 = BigInt::from(1i64);
        let mut x1 = BigInt::from(0i64);
        while !r1.is_zero() {
            let q = r0.div_floor(&r1);
            let r2 = &r0 - &(&q * &r1);
            r0 = std::mem::replace(&mut r1, r2);
            let x2 = &x0 - &(&q * &x1);
            x0 = std::mem::replace(&mut x1, x2);
        }
        if !r0.magnitude().is_one() {
            return None;
        }
        Some(x0.rem_euclid_biguint(m))
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;

    fn n(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn modpow_basics() {
        assert_eq!(n(2).modpow(&n(10), &n(1000)), n(24)); // 1024 mod 1000
        assert_eq!(n(5).modpow(&n(0), &n(7)), n(1));
        assert_eq!(n(5).modpow(&n(117), &n(1)), n(0));
    }

    #[test]
    fn modpow_fermat_little() {
        // a^(p-1) ≡ 1 (mod p) for prime p and a not divisible by p.
        let p = n(1_000_000_007);
        for a in [2u64, 3, 12345, 999_999_999] {
            assert_eq!(n(a).modpow(&(&p - &BigUint::one()), &p), BigUint::one());
        }
    }

    #[test]
    fn modpow_large_operands() {
        // 2^(2^64) mod (2^89 - 1): since 2^89 ≡ 1 the exponent reduces
        // mod 89, and 2^64 ≡ 67 (mod 89) → expect 2^67.
        let m = &(BigUint::one() << 89usize) - &BigUint::one();
        let exp = BigUint::one() << 64usize;
        assert_eq!(n(2).modpow(&exp, &m), BigUint::one() << 67usize);
    }

    #[test]
    fn modsub_wraps() {
        assert_eq!(n(3).modsub(&n(5), &n(7)), n(5));
        assert_eq!(n(5).modsub(&n(3), &n(7)), n(2));
    }

    #[test]
    fn modpow_dispatch_agrees_with_naive() {
        // Exponents straddling the Montgomery dispatch threshold, odd and
        // even moduli: every combination must match the naive ladder.
        let moduli = [n(1_000_000_007), n(1_000_000_006), n(1)];
        let exps = [
            n(0),
            n(1),
            &(BigUint::one() << 31usize) - &BigUint::one(), // below threshold
            BigUint::one() << 31usize,                      // at threshold
            &(BigUint::one() << 64usize) + &n(12345),       // above
        ];
        for m in &moduli {
            for e in &exps {
                let base = n(987_654_321);
                assert_eq!(
                    base.modpow(e, m),
                    base.modpow_naive(e, m),
                    "m = {m:?}, exp bits = {}",
                    e.bit_len()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "modadd modulus must be nonzero")]
    fn modadd_zero_modulus_asserts() {
        n(3).modadd(&n(5), &BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "modsub modulus must be nonzero")]
    fn modsub_zero_modulus_asserts() {
        n(5).modsub(&n(3), &BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "modmul modulus must be nonzero")]
    fn modmul_zero_modulus_asserts() {
        n(3).modmul(&n(5), &BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "modpow modulus must be nonzero")]
    fn modpow_zero_modulus_asserts() {
        n(3).modpow(&n(5), &BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "modpow modulus must be nonzero")]
    fn modpow_naive_zero_modulus_asserts() {
        n(3).modpow_naive(&n(5), &BigUint::zero());
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(n(48).gcd(&n(36)), n(12));
        assert_eq!(n(0).gcd(&n(5)), n(5));
        assert_eq!(n(48).lcm(&n(36)), n(144));
        assert_eq!(n(0).lcm(&n(5)), n(0));
    }

    #[test]
    fn modinv_known_values() {
        assert_eq!(n(3).modinv(&n(7)), Some(n(5))); // 3·5 = 15 ≡ 1 (mod 7)
        assert_eq!(n(2).modinv(&n(4)), None); // gcd 2
        assert_eq!(n(1).modinv(&n(2)), Some(n(1)));
        assert_eq!(n(10).modinv(&n(1)), None);
    }

    #[test]
    fn modinv_large_prime() {
        let p = n(1_000_000_007);
        let a = n(123_456_789);
        let inv = a.modinv(&p).unwrap();
        assert_eq!(a.modmul(&inv, &p), BigUint::one());
    }
}
