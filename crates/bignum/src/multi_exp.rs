//! Straus/Shamir simultaneous multi-exponentiation.
//!
//! Computing `∏ bᵢ^eᵢ mod m` by exponentiating each base separately and
//! multiplying the results repeats the squaring chain once per base — the
//! dominant cost for large exponents. The Straus trick (often called
//! Shamir's when there are two bases) runs **one** shared squaring chain
//! over the longest exponent and folds in a per-base window-table lookup
//! whenever that base's current digit is nonzero: `p` bases of `k`-bit
//! exponents cost ~`k` squarings plus `p·⌈k/w⌉` multiplications instead of
//! `p·k` squarings.
//!
//! This is the shape of Paillier's encryption core `g^m · r^n mod n²` and
//! of folding plaintext-weighted ciphertexts (`∏ cᵢ^{kᵢ}`) in a single
//! pass — see `EncryptedSum::weighted_product` in `dpe-paillier`.
//!
//! For odd moduli the chain runs in Montgomery form (division-free, via
//! [`MontgomeryCtx`]); even moduli use schoolbook [`BigUint::modmul`].
//! Either way the result is bit-identical to the fold of
//! [`BigUint::modpow_naive`] products it replaces.

use crate::fixed_base::window_digit;
use crate::montgomery::MontgomeryCtx;
use crate::BigUint;

/// Window width (bits) for the per-base digit tables. At 2–4 bases and
/// crypto-sized exponents, 4 bits beats wider windows: each extra window
/// bit doubles the `p · (2^w − 1)`-entry table cost but only trims the
/// per-base multiplication count by `1/w`.
const WINDOW_BITS: usize = 4;

/// `∏ baseᵢ^expᵢ mod m` via Straus interleaving: one shared squaring
/// chain, one windowed table per base.
///
/// An empty `pairs` slice yields `1 mod m`. Bit-identical to computing
/// each `modpow` separately and multiplying the results.
///
/// ```
/// use dpe_bignum::{multi_modpow, BigUint};
///
/// let m = BigUint::from(1_000_000_007u64);
/// let pairs = [
///     (BigUint::from(3u64), BigUint::from(1_234_567u64)),
///     (BigUint::from(5u64), BigUint::from(7_654_321u64)),
/// ];
/// let naive = pairs
///     .iter()
///     .fold(BigUint::one(), |acc, (b, e)| {
///         acc.modmul(&b.modpow_naive(e, &m), &m)
///     });
/// assert_eq!(multi_modpow(&pairs, &m), naive);
/// ```
///
/// # Panics
///
/// Panics when `m` is zero.
pub fn multi_modpow(pairs: &[(BigUint, BigUint)], m: &BigUint) -> BigUint {
    assert!(!m.is_zero(), "multi_modpow modulus must be nonzero");
    match MontgomeryCtx::new(m) {
        Some(ctx) => multi_modpow_ctx(pairs, &ctx),
        None => {
            if m.is_one() {
                return BigUint::zero();
            }
            straus(pairs, &BigUint::one(), |x| x % m, |a, b| a.modmul(b, m))
        }
    }
}

/// [`multi_modpow`] against a prebuilt [`MontgomeryCtx`] — callers holding
/// a long-lived modulus (a Paillier `n²`) skip the per-call context setup.
pub fn multi_modpow_ctx(pairs: &[(BigUint, BigUint)], ctx: &MontgomeryCtx) -> BigUint {
    if ctx.modulus().is_one() {
        return BigUint::zero();
    }
    let one = ctx.one().clone();
    let result = straus(pairs, &one, |x| ctx.to_mont(x), |a, b| ctx.mont_mul(a, b));
    ctx.from_mont(&result)
}

/// The interleaved chain, parameterized over the group representation:
/// `one` is the neutral element, `lift` takes an ordinary residue into it,
/// `mul` is the group operation. With the Montgomery representation every
/// `mul` is a division-free REDC step.
fn straus(
    pairs: &[(BigUint, BigUint)],
    one: &BigUint,
    lift: impl Fn(&BigUint) -> BigUint,
    mul: impl Fn(&BigUint, &BigUint) -> BigUint,
) -> BigUint {
    // Per-base tables: tables[i][d - 1] = baseᵢ^d for d ∈ [1, 2^w).
    let tables: Vec<Vec<BigUint>> = pairs
        .iter()
        .map(|(base, _)| {
            let base = lift(base);
            let mut row = Vec::with_capacity((1 << WINDOW_BITS) - 1);
            row.push(base.clone());
            for _ in 1..(1 << WINDOW_BITS) - 1 {
                let next = mul(row.last().unwrap(), &base);
                row.push(next);
            }
            row
        })
        .collect();
    let max_bits = pairs.iter().map(|(_, e)| e.bit_len()).max().unwrap_or(0);
    let windows = max_bits.div_ceil(WINDOW_BITS);
    let mut acc = one.clone();
    for i in (0..windows).rev() {
        if acc != *one {
            for _ in 0..WINDOW_BITS {
                acc = mul(&acc, &acc);
            }
        }
        for (t, (_, exp)) in tables.iter().zip(pairs) {
            let d = window_digit(exp, i, WINDOW_BITS);
            if d != 0 {
                acc = mul(&acc, &t[d - 1]);
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from(v)
    }

    fn naive(pairs: &[(BigUint, BigUint)], m: &BigUint) -> BigUint {
        pairs.iter().fold(&BigUint::one() % m, |acc, (b, e)| {
            acc.modmul(&b.modpow_naive(e, m), m)
        })
    }

    #[test]
    fn empty_product_is_one() {
        assert_eq!(multi_modpow(&[], &n(97)), BigUint::one());
        assert_eq!(multi_modpow(&[], &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn single_pair_matches_modpow() {
        let m = n(1_000_000_007);
        let pairs = [(n(3), n(987_654_321))];
        assert_eq!(multi_modpow(&pairs, &m), naive(&pairs, &m));
    }

    #[test]
    fn shamir_two_bases() {
        let m = &(BigUint::one() << 256usize) - &n(189); // odd
        let pairs = [
            (
                &(BigUint::one() << 130usize) + &n(7),
                &(BigUint::one() << 200usize) + &n(3),
            ),
            (
                &(BigUint::one() << 99usize) + &n(11),
                &(BigUint::one() << 150usize) + &n(5),
            ),
        ];
        assert_eq!(multi_modpow(&pairs, &m), naive(&pairs, &m));
    }

    #[test]
    fn four_bases_mixed_exponent_widths() {
        let m = n(0xFFFF_FFFF_FFFF_FFC5);
        let pairs = [
            (n(2), n(0)),
            (n(3), n(1)),
            (n(5), n(u64::MAX)),
            (n(7), n(255)),
        ];
        assert_eq!(multi_modpow(&pairs, &m), naive(&pairs, &m));
    }

    #[test]
    fn even_modulus_path() {
        let m = n(1_000_000_006);
        let pairs = [(n(3), n(987_654_321)), (n(5), n(123_456_789))];
        assert_eq!(multi_modpow(&pairs, &m), naive(&pairs, &m));
    }

    #[test]
    fn zero_base_and_modulus_one() {
        let m = n(97);
        let pairs = [(BigUint::zero(), n(5)), (n(3), n(7))];
        assert_eq!(multi_modpow(&pairs, &m), BigUint::zero());
        assert_eq!(multi_modpow(&pairs, &BigUint::one()), BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "multi_modpow modulus must be nonzero")]
    fn zero_modulus_asserts() {
        multi_modpow(&[(n(2), n(3))], &BigUint::zero());
    }
}
