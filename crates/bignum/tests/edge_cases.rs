//! Edge-case tests for the arithmetic layer everything above it trusts:
//! zero handling, single-limb carry/borrow boundaries, and modular inverses
//! of non-coprime inputs.

use dpe_bignum::BigUint;

fn n(v: u64) -> BigUint {
    BigUint::from(v)
}

#[test]
fn zero_is_absorbing_and_neutral() {
    let zero = BigUint::zero();
    let x = n(123_456_789);
    assert_eq!(&zero + &x, x);
    assert_eq!(&x + &zero, x);
    assert_eq!(&x - &zero, x);
    assert_eq!(&zero * &x, zero);
    assert_eq!(&x * &zero, zero);
    assert_eq!(&zero - &zero, zero);
    assert!(zero.is_zero());
    assert!(!zero.is_one());
    assert_eq!(zero.bit_len(), 0);
    assert_eq!(zero.to_u64(), Some(0));
}

#[test]
fn zero_parsing_and_rendering() {
    assert_eq!("0".parse::<BigUint>().unwrap(), BigUint::zero());
    assert_eq!(BigUint::zero().to_string(), "0");
    assert_eq!(BigUint::from_bytes_be(&[]), BigUint::zero());
    assert_eq!(BigUint::from_bytes_be(&[0, 0, 0]), BigUint::zero());
    assert_eq!(BigUint::from_limbs(vec![]), BigUint::zero());
    assert_eq!(BigUint::from_limbs(vec![0, 0]), BigUint::zero());
}

#[test]
fn single_limb_carry_propagates() {
    // u64::MAX + 1 must spill into a second limb.
    let max = n(u64::MAX);
    let sum = &max + &n(1);
    assert_eq!(sum.limbs(), &[0, 1]);
    assert_eq!(sum.bit_len(), 65);
    assert_eq!(sum.to_u64(), None);
    assert_eq!(sum.to_u128(), Some(u128::from(u64::MAX) + 1));
    // And the borrow must come back out.
    assert_eq!(&sum - &n(1), max);
}

#[test]
fn carry_chains_across_many_limbs() {
    // (2^256 - 1) + 1 = 2^256: a carry rippling through four full limbs.
    let all_ones = BigUint::from_limbs(vec![u64::MAX; 4]);
    let big = &all_ones + &n(1);
    assert_eq!(big.limbs(), &[0, 0, 0, 0, 1]);
    assert_eq!(&big - &n(1), all_ones);
}

#[test]
fn multiplication_hits_the_limb_boundary() {
    // u64::MAX * u64::MAX = 2^128 - 2^65 + 1 needs exactly two limbs.
    let max = n(u64::MAX);
    let sq = &max * &max;
    assert_eq!(
        sq.to_u128(),
        Some(u128::from(u64::MAX) * u128::from(u64::MAX))
    );
    let (q, r) = sq.div_rem(&max);
    assert_eq!(q, max);
    assert!(r.is_zero());
}

#[test]
fn subtraction_borrow_at_limb_boundary() {
    let two_64 = &n(u64::MAX) + &n(1);
    assert_eq!(&two_64 - &n(1), n(u64::MAX));
    let two_128 = BigUint::from_limbs(vec![0, 0, 1]);
    let back = &two_128 - &n(1);
    assert_eq!(back.limbs(), &[u64::MAX, u64::MAX]);
}

#[test]
fn saturating_sub_clamps_at_zero() {
    assert_eq!(n(5).saturating_sub(&n(7)), BigUint::zero());
    assert_eq!(n(7).saturating_sub(&n(5)), n(2));
    assert_eq!(BigUint::zero().saturating_sub(&n(1)), BigUint::zero());
}

#[test]
fn shifts_across_limb_boundaries() {
    let one = BigUint::one();
    let shifted = &one << 64;
    assert_eq!(shifted.limbs(), &[0, 1]);
    assert_eq!(&shifted >> 64, one);
    assert_eq!(&shifted >> 65, BigUint::zero());
    assert_eq!(&BigUint::zero() << 1000, BigUint::zero());
}

#[test]
fn modinv_of_non_coprime_inputs_is_none() {
    // gcd(6, 9) = 3 ≠ 1: no inverse exists.
    assert_eq!(n(6).modinv(&n(9)), None);
    // Any even number mod an even modulus.
    assert_eq!(n(4).modinv(&n(8)), None);
    // Zero is never invertible.
    assert_eq!(BigUint::zero().modinv(&n(7)), None);
    // A multiple of the modulus reduces to zero.
    assert_eq!(n(14).modinv(&n(7)), None);
}

#[test]
fn modinv_of_coprime_inputs_verifies() {
    for (a, m) in [(3u64, 7u64), (10, 17), (2, 9), (65_537, 1_000_003)] {
        let inv = n(a)
            .modinv(&n(m))
            .expect("coprime values must be invertible");
        assert_eq!((&n(a) * &inv) % &n(m), BigUint::one(), "a={a} m={m}");
    }
    // 1 is its own inverse in any modulus > 1.
    assert_eq!(BigUint::one().modinv(&n(5)), Some(BigUint::one()));
}

#[test]
fn modpow_degenerate_exponents_and_moduli() {
    // x^0 mod m = 1 for m > 1.
    assert_eq!(n(12).modpow(&BigUint::zero(), &n(35)), BigUint::one());
    // 0^e mod m = 0 for e > 0.
    assert_eq!(BigUint::zero().modpow(&n(9), &n(35)), BigUint::zero());
    // mod 1 collapses everything to 0.
    assert_eq!(n(12).modpow(&n(5), &BigUint::one()), BigUint::zero());
}

#[test]
fn gcd_with_zero_is_identity() {
    assert_eq!(n(42).gcd(&BigUint::zero()), n(42));
    assert_eq!(BigUint::zero().gcd(&n(42)), n(42));
    assert_eq!(n(12).gcd(&n(18)), n(6));
}

#[test]
fn division_by_one_and_self() {
    let x = BigUint::from_limbs(vec![0xDEAD_BEEF, 0xFEED_FACE, 7]);
    let (q, r) = x.div_rem(&BigUint::one());
    assert_eq!(q, x);
    assert!(r.is_zero());
    let (q, r) = x.div_rem(&x);
    assert!(q.is_one());
    assert!(r.is_zero());
}

#[test]
fn byte_roundtrip_strips_leading_zeros() {
    let x = BigUint::from_bytes_be(&[0, 0, 1, 2, 3]);
    assert_eq!(x, BigUint::from_bytes_be(&[1, 2, 3]));
    assert_eq!(x.to_bytes_be(), vec![1, 2, 3]);
}
