//! Adversarial pinning of the Montgomery/multi-exp fast paths against the
//! naive reference implementations.
//!
//! Every fast path in `dpe_bignum` — `MontgomeryCtx::pow`, the `modpow`
//! dispatch, Montgomery-backed `FixedBaseTable`, and Straus
//! `multi_modpow` — must be **bit-identical** to the schoolbook code it
//! replaces. These properties drive the adversarial operand shapes the
//! unit tests can't enumerate: random multi-limb values, `m = 1`,
//! even-modulus rejection, and exponents at exact word/window boundaries.

use dpe_bignum::{multi_modpow, BigUint, FixedBaseTable, MontgomeryCtx};
use proptest::prelude::*;

fn arb_biguint(max_limbs: usize) -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 0..=max_limbs).prop_map(BigUint::from_limbs)
}

/// Arbitrary odd modulus (Montgomery-eligible), at least 1.
fn arb_odd_modulus(max_limbs: usize) -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 1..=max_limbs).prop_map(|mut limbs| {
        limbs[0] |= 1;
        BigUint::from_limbs(limbs)
    })
}

/// Exponents hugging word (64-bit) and 4-bit-window boundaries, where
/// digit extraction and chain initialization are most likely to be wrong:
/// 2^k − 1, 2^k, 2^k + 1 for k at limb and window edges.
fn boundary_exponents() -> Vec<BigUint> {
    let mut exps = vec![BigUint::zero(), BigUint::one()];
    for k in [
        3usize, 4, 5, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 129,
    ] {
        let pow = BigUint::one() << k;
        exps.push(&pow - &BigUint::one());
        exps.push(pow.clone());
        exps.push(&pow + &BigUint::one());
    }
    exps
}

proptest! {
    #[test]
    fn montgomery_pow_matches_naive(
        base in arb_biguint(5),
        exp in arb_biguint(3),
        m in arb_odd_modulus(4),
    ) {
        let ctx = MontgomeryCtx::new(&m).expect("odd modulus");
        prop_assert_eq!(ctx.pow(&base, &exp), base.modpow_naive(&exp, &m));
    }

    #[test]
    fn montgomery_mul_matches_modmul(
        a in arb_biguint(5),
        b in arb_biguint(5),
        m in arb_odd_modulus(4),
    ) {
        let ctx = MontgomeryCtx::new(&m).expect("odd modulus");
        let (a, b) = (&a % &m, &b % &m);
        let got = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
        prop_assert_eq!(got, a.modmul(&b, &m));
    }

    #[test]
    fn mont_form_roundtrips(x in arb_biguint(5), m in arb_odd_modulus(4)) {
        let ctx = MontgomeryCtx::new(&m).expect("odd modulus");
        prop_assert_eq!(ctx.from_mont(&ctx.to_mont(&x)), &x % &m);
    }

    #[test]
    fn modpow_dispatch_matches_naive(
        base in arb_biguint(4),
        exp in arb_biguint(3),
        m in arb_biguint(4),
    ) {
        // Any modulus shape: odd takes Montgomery, even stays naive —
        // callers must not be able to tell the difference.
        prop_assume!(!m.is_zero());
        prop_assert_eq!(base.modpow(&exp, &m), base.modpow_naive(&exp, &m));
    }

    #[test]
    fn even_moduli_are_rejected(m in arb_biguint(4)) {
        let even = &m * &BigUint::two();
        prop_assert!(MontgomeryCtx::new(&even).is_none());
    }

    #[test]
    fn modulus_one_collapses_everything(base in arb_biguint(4), exp in arb_biguint(3)) {
        let one = BigUint::one();
        let ctx = MontgomeryCtx::new(&one).expect("1 is odd");
        prop_assert_eq!(ctx.pow(&base, &exp), BigUint::zero());
        prop_assert_eq!(base.modpow(&exp, &one), BigUint::zero());
        prop_assert_eq!(multi_modpow(&[(base, exp)], &one), BigUint::zero());
    }

    #[test]
    fn fixed_base_montgomery_rows_match_modpow(
        base in arb_biguint(3),
        exp in arb_biguint(2),
        m in arb_odd_modulus(3),
        window in 1usize..=8,
    ) {
        // Odd moduli put FixedBaseTable on the Montgomery-row path.
        let table = FixedBaseTable::with_window(&base, &m, 128, window);
        prop_assert_eq!(table.pow(&exp), base.modpow_naive(&exp, &m));
    }

    #[test]
    fn multi_modpow_matches_naive_fold(
        pairs in proptest::collection::vec((arb_biguint(3), arb_biguint(2)), 0..5),
        m in arb_biguint(3),
    ) {
        prop_assume!(!m.is_zero());
        let naive = pairs.iter().fold(&BigUint::one() % &m, |acc, (b, e)| {
            acc.modmul(&b.modpow_naive(e, &m), &m)
        });
        prop_assert_eq!(multi_modpow(&pairs, &m), naive);
    }

    #[test]
    fn boundary_exponents_match_naive(base in arb_biguint(3), m in arb_odd_modulus(3)) {
        let ctx = MontgomeryCtx::new(&m).expect("odd modulus");
        let table = FixedBaseTable::new(&base, &m, 130);
        for exp in boundary_exponents() {
            let want = base.modpow_naive(&exp, &m);
            prop_assert_eq!(ctx.pow(&base, &exp), want.clone(), "mont, exp {} bits", exp.bit_len());
            prop_assert_eq!(base.modpow(&exp, &m), want.clone(), "dispatch, exp {} bits", exp.bit_len());
            prop_assert_eq!(table.pow(&exp), want, "table, exp {} bits", exp.bit_len());
        }
    }
}
