//! End-to-end ratchet tests against the *real* workspace: the committed
//! `ANALYZE_BASELINE.json` must be exactly reproducible from the current
//! sources, and injecting a synthetic violation — a secret-dependent
//! branch in a crypto crate, a lock-order inversion in the server — must
//! surface as a NEW finding that fails the ratchet.

use dpe_analyze::config::Config;
use dpe_analyze::engine::{analyze, discover_sources};
use dpe_analyze::findings::{baseline_from_json, ratchet};
use dpe_analyze::model::{scan_file, FileModel};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("crates/analyze/../.. resolves to the workspace root")
}

fn load_workspace(root: &Path) -> (Config, Vec<FileModel>) {
    let config = Config::from_toml(
        &std::fs::read_to_string(root.join("analyze.toml")).expect("analyze.toml exists"),
    )
    .expect("analyze.toml parses");
    let files = discover_sources(root)
        .expect("workspace sources discoverable")
        .into_iter()
        .map(|s| {
            let text = std::fs::read_to_string(&s.abs_path).expect("source readable");
            scan_file(&s.crate_name, &s.rel_path, &text)
        })
        .collect();
    (config, files)
}

fn committed_baseline(root: &Path) -> std::collections::BTreeSet<String> {
    baseline_from_json(
        &std::fs::read_to_string(root.join("ANALYZE_BASELINE.json"))
            .expect("ANALYZE_BASELINE.json committed"),
    )
    .expect("baseline parses")
}

#[test]
fn workspace_is_clean_against_the_committed_baseline() {
    let root = repo_root();
    let (config, files) = load_workspace(&root);
    let findings = analyze(&files, &config);
    let r = ratchet(&findings, &committed_baseline(&root));
    assert!(
        r.is_clean(),
        "the committed baseline must match the sources exactly.\nnew: {:#?}\nstale: {:#?}\n\
         (fix the new findings, or re-bless with `cargo run -p dpe-analyze -- --bless`)",
        r.new,
        r.stale
    );
}

#[test]
fn injected_secret_dependent_branch_fails_the_ratchet() {
    let root = repo_root();
    let (config, mut files) = load_workspace(&root);
    // A synthetic key-bit branch inside a secret root's impl: exactly the
    // regression the pass exists to catch.
    files.push(scan_file(
        "paillier",
        "crates/paillier/src/injected.rs",
        "impl PrivateKey {\n    pub fn decrypt(&self, c: &C) -> u64 {\n        if self.lambda.bit(0) { 1 } else { 0 }\n    }\n}\n",
    ));
    let r = ratchet(&analyze(&files, &config), &committed_baseline(&root));
    assert!(
        r.new
            .iter()
            .any(|f| f.rule == "secret-branch" && f.file.ends_with("injected.rs")),
        "a key-dependent branch in a secret root must be a NEW finding; got {:#?}",
        r.new
    );
}

#[test]
fn injected_lock_order_inversion_fails_the_ratchet() {
    let root = repo_root();
    let (config, mut files) = load_workspace(&root);
    // The server consistently acquires a shard lock before the cache
    // lock; inject the reverse order.
    files.push(scan_file(
        "server",
        "crates/server/src/injected.rs",
        "impl Server {\n    fn inverted(&self, i: usize) {\n        let c = self.caches[i].lock().expect(\"cache\");\n        let s = self.shards[i].write().expect(\"shard\");\n    }\n}\n",
    ));
    let r = ratchet(&analyze(&files, &config), &committed_baseline(&root));
    assert!(
        r.new.iter().any(|f| f.rule == "lock-order-cycle"),
        "an AB/BA inversion against the server's real lock order must be a NEW finding; got {:#?}",
        r.new
    );
}

#[test]
fn injected_bare_unwrap_in_server_fails_the_ratchet() {
    let root = repo_root();
    let (config, mut files) = load_workspace(&root);
    files.push(scan_file(
        "server",
        "crates/server/src/injected.rs",
        "impl Server {\n    fn sloppy(&self, x: Option<u8>) -> u8 {\n        x.unwrap()\n    }\n}\n",
    ));
    let r = ratchet(&analyze(&files, &config), &committed_baseline(&root));
    assert!(
        r.new.iter().any(|f| f.rule == "bare-unwrap"),
        "a bare unwrap in dpe-server non-test code must be a NEW finding; got {:#?}",
        r.new
    );
}

#[test]
fn removing_a_crate_root_forbid_makes_a_new_finding() {
    let root = repo_root();
    let (config, mut files) = load_workspace(&root);
    let bignum = files
        .iter_mut()
        .find(|f| f.path == "crates/bignum/src/lib.rs")
        .expect("bignum root scanned");
    bignum.has_forbid_unsafe = false;
    let r = ratchet(&analyze(&files, &config), &committed_baseline(&root));
    assert!(
        r.new.iter().any(|f| f.rule == "missing-forbid-unsafe"),
        "dropping #![forbid(unsafe_code)] must be a NEW finding; got {:#?}",
        r.new
    );
}

#[test]
fn fixed_findings_show_up_as_stale_baseline_entries() {
    let root = repo_root();
    let (config, files) = load_workspace(&root);
    let findings = analyze(&files, &config);
    let mut baseline = committed_baseline(&root);
    baseline.insert("secret-branch|crates/paillier/src/gone.rs|paillier::gone|if|0".to_string());
    let r = ratchet(&findings, &baseline);
    assert_eq!(
        r.stale.len(),
        1,
        "a baseline entry with no finding is stale: {:#?}",
        r.stale
    );
    assert!(
        !r.is_clean(),
        "stale entries fail the ratchet until re-blessed"
    );
}
