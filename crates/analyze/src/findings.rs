//! Findings, their machine-readable JSON form, and the baseline ratchet.
//!
//! A finding's **key** is what the ratchet compares, so it must be stable
//! under unrelated edits: it is built from the rule, the file, the
//! function's qualified name, the offending token text, and the
//! occurrence index *within that function* — never from line numbers
//! (which churn) or absolute token positions.
//!
//! Ratchet semantics ([`ratchet`]):
//! * a current finding whose key is not in the baseline is **new** →
//!   CI fails (fix it, waive it with a justified inline waiver, or — for
//!   pre-existing debt being intentionally accepted — re-bless);
//! * a baseline key with no current finding is **stale** → CI fails too,
//!   with instructions to re-bless: the baseline may only shrink, and a
//!   fixed finding must be locked out of coming back.

use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One finding.
// The clippy.toml ban on `PartialOrd::partial_cmp` targets NaN-prone
// float sorts; this derive is field-wise over strings and integers.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Stable ratchet key (sorted-by for deterministic output).
    pub key: String,
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub function: String,
    pub message: String,
}

/// Builds the stable key for a finding. `detail` is the offending token
/// or lock-pair text; `index` disambiguates repeated occurrences of the
/// same detail within one function.
pub fn finding_key(rule: &str, file: &str, function: &str, detail: &str, index: usize) -> String {
    format!("{rule}|{file}|{function}|{detail}|{index}")
}

/// JSON schema tag for both the findings report and the baseline.
pub const SCHEMA: &str = "dpe-analyze/v1";

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes the full findings report (the CI artifact).
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"count\": {},", findings.len());
    let _ = writeln!(out, "  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 < findings.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"function\": \"{}\", \"message\": \"{}\", \"key\": \"{}\"}}{comma}",
            json_escape(&f.rule),
            json_escape(&f.file),
            f.line,
            json_escape(&f.function),
            json_escape(&f.message),
            json_escape(&f.key),
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = write!(out, "}}");
    out
}

/// Serializes a baseline: the sorted set of accepted finding keys.
pub fn baseline_to_json(keys: &BTreeSet<String>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"count\": {},", keys.len());
    let _ = writeln!(out, "  \"keys\": [");
    for (i, k) in keys.iter().enumerate() {
        let comma = if i + 1 < keys.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{}\"{comma}", json_escape(k));
    }
    let _ = writeln!(out, "  ]");
    let _ = write!(out, "}}");
    out
}

/// Parses a baseline file written by [`baseline_to_json`]. Key-order and
/// whitespace insensitive; an unknown schema tag is an explicit error.
pub fn baseline_from_json(text: &str) -> Result<BTreeSet<String>, String> {
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\""))
        && !text.contains(&format!("\"schema\":\"{SCHEMA}\""))
    {
        return Err(format!(
            "baseline: missing or unknown schema tag (expected \"{SCHEMA}\")"
        ));
    }
    let at = text
        .find("\"keys\"")
        .ok_or_else(|| "baseline: no \"keys\" array".to_string())?;
    let rest = &text[at..];
    let open = rest
        .find('[')
        .ok_or_else(|| "baseline: malformed keys array".to_string())?;
    let close = rest
        .rfind(']')
        .ok_or_else(|| "baseline: malformed keys array".to_string())?;
    let body = &rest[open + 1..close];
    let mut keys = BTreeSet::new();
    // Keys are written by us and contain no quotes; parse quoted strings,
    // honouring the escapes json_escape can produce.
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c != '"' {
            continue;
        }
        let mut s = String::new();
        while let Some(c) = chars.next() {
            match c {
                '"' => break,
                '\\' => match chars.next() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some(e) => s.push(e),
                    None => break,
                },
                c => s.push(c),
            }
        }
        keys.insert(s);
    }
    Ok(keys)
}

/// The result of comparing current findings against the baseline.
#[derive(Debug, Default)]
pub struct Ratchet {
    /// Findings not in the baseline — regressions; CI fails.
    pub new: Vec<Finding>,
    /// Baseline keys with no matching finding — fixed debt whose baseline
    /// entry must now be removed (re-bless); CI fails until it shrinks.
    pub stale: Vec<String>,
}

impl Ratchet {
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

/// Compares `findings` to `baseline` keys.
pub fn ratchet(findings: &[Finding], baseline: &BTreeSet<String>) -> Ratchet {
    let current: BTreeSet<&str> = findings.iter().map(|f| f.key.as_str()).collect();
    Ratchet {
        new: findings
            .iter()
            .filter(|f| !baseline.contains(&f.key))
            .cloned()
            .collect(),
        stale: baseline
            .iter()
            .filter(|k| !current.contains(k.as_str()))
            .cloned()
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &str, detail: &str, index: usize) -> Finding {
        Finding {
            key: finding_key(rule, "src/a.rs", "c::f", detail, index),
            rule: rule.into(),
            file: "src/a.rs".into(),
            line: 3,
            function: "c::f".into(),
            message: format!("msg {detail}"),
        }
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let keys: BTreeSet<String> = [
            "a|b|c|%|0".to_string(),
            "x|y|z|if|2".to_string(),
            "q|w \\ \"e\"|r|/|1".to_string(),
        ]
        .into();
        let parsed = baseline_from_json(&baseline_to_json(&keys)).unwrap();
        assert_eq!(parsed, keys);
    }

    #[test]
    fn unknown_schema_rejected() {
        assert!(baseline_from_json("{\"schema\": \"dpe-analyze/v9\", \"keys\": []}").is_err());
    }

    #[test]
    fn ratchet_flags_new_and_stale() {
        let findings = vec![f("r1", "%", 0), f("r2", "if", 0)];
        let baseline: BTreeSet<String> = [
            findings[0].key.clone(),
            finding_key("gone", "src/a.rs", "c::g", "/", 0),
        ]
        .into();
        let r = ratchet(&findings, &baseline);
        assert_eq!(r.new.len(), 1);
        assert_eq!(r.new[0].rule, "r2");
        assert_eq!(
            r.stale,
            vec![finding_key("gone", "src/a.rs", "c::g", "/", 0)]
        );
        assert!(!r.is_clean());
    }

    #[test]
    fn clean_ratchet_when_sets_match() {
        let findings = vec![f("r1", "%", 0)];
        let baseline: BTreeSet<String> = [findings[0].key.clone()].into();
        assert!(ratchet(&findings, &baseline).is_clean());
    }

    #[test]
    fn findings_json_contains_every_field() {
        let json = findings_to_json(&[f("secret-division", "%", 0)]);
        for needle in [
            "\"schema\"",
            "secret-division",
            "src/a.rs",
            "\"line\": 3",
            "c::f",
            "msg %",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
