//! # dpe-analyze — workspace static analysis for the DPE codebase
//!
//! A self-contained (dependency-free, like everything else in this
//! workspace) static-analysis toolkit that encodes the repo's two
//! domain-specific safety policies as enforceable lints:
//!
//! * **Secret-flow / constant-time** ([`secret`]): functions reachable
//!   from the configured secret-input roots in `dpe-bignum`,
//!   `dpe-paillier`, `dpe-ope` and `dpe-crypto` may not contain
//!   secret-conditioned branches, variable-time division, early returns,
//!   or variable-length loops — unless covered by an inline waiver with a
//!   mandatory written justification.
//! * **Lock order / race patterns** ([`locks`]): `dpe-server`'s mutex and
//!   rwlock acquisitions are modelled as an order graph; cyclic orders,
//!   re-entrant acquisitions, channel operations under a lock, instantly
//!   dropped guards, and guard-returning functions are flagged.
//!
//! Plus two hygiene passes: `#![forbid(unsafe_code)]` required at every
//! configured crate root, and bare `.unwrap()` banned in `dpe-server`
//! non-test code.
//!
//! Findings are compared against the committed `ANALYZE_BASELINE.json`:
//! **new findings fail CI** and the baseline may only shrink (fixed
//! findings must be re-blessed out, so they cannot silently return).
//! Policy lives in the root `analyze.toml`; the driver is
//! `cargo run -p dpe-analyze -- --ci`. See `ANALYZE.md` for the rule
//! catalogue and waiver syntax.
//!
//! Everything is built on an honest token scan ([`lexer`]) — nested
//! block comments, raw strings, lifetimes vs char literals — feeding a
//! per-function item model ([`model`]) with an approximate call graph.
//! No name resolution, no types: the passes over-approximate and the
//! waiver + ratchet machinery makes that workable.

#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod findings;
pub mod lexer;
pub mod locks;
pub mod model;
pub mod secret;
