//! A small but honest Rust lexer.
//!
//! The passes in this crate reason about *token streams*, never raw text,
//! so the one place that must get Rust's surface syntax right is here:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */` — Rust block comments nest, unlike C),
//! * string literals with escapes, byte strings, and **raw strings**
//!   (`r"…"`, `r#"…"#`, … with any number of `#`s, where `\` is literal
//!   and `"` only terminates when followed by the matching `#` count),
//! * the `'a` lifetime vs `'a'` char-literal ambiguity (including
//!   escaped chars `'\''` and multi-byte chars),
//! * numeric literals with underscores, type suffixes, hex/oct/bin
//!   prefixes, floats and exponents (without eating `..` ranges),
//! * multi-char operators tokenized greedily (`::` before `:`, `..=`
//!   before `..`, `<<=` before `<<`, …).
//!
//! Comments are not discarded: they are returned out-of-band so the
//! waiver scanner ([`crate::model`]) can find
//! `// dpe-analyze: allow(rule, reason = "…")` annotations.

/// What a token is — coarse classes, enough for the passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `if`, `match`, names, …).
    Ident,
    /// Lifetime (`'a`, `'static`) — distinct from char literals.
    Lifetime,
    /// Character literal (`'a'`, `'\n'`).
    Char,
    /// String, byte-string, or raw-string literal.
    Str,
    /// Numeric literal (integer or float, any base, any suffix).
    Num,
    /// Operator or punctuation, possibly multi-char (`::`, `->`, `%=`).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

/// A comment captured out-of-band (waiver annotations live here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Full comment text without the `//` / `/*` framing.
    pub text: String,
    /// Line the comment starts on.
    pub line: u32,
}

/// The output of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Multi-char operators, longest-first so greedy matching is correct.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "..", "<<", ">>", "<=", ">=", "==", "!=", "&&",
    "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens plus out-of-band comments. The lexer never
/// fails: malformed trailing syntax (unterminated literals at EOF) yields
/// whatever tokens were complete before it.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = chars.len();

    macro_rules! bump_lines {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
            }
        };
    }

    while i < n {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            bump_lines!(c);
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start_line = line;
            let mut j = i + 2;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                text: chars[i + 2..j].iter().collect(),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Block comment — nested.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start_line = line;
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    bump_lines!(chars[j]);
                    j += 1;
                }
            }
            out.comments.push(Comment {
                text: chars[i + 2..j.saturating_sub(2).max(i + 2)]
                    .iter()
                    .collect(),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Raw strings: r"…" / r#"…"# / br##"…"## — `#` count must match.
        if (c == 'r' || c == 'b') && raw_string_at(&chars, i) {
            let start_line = line;
            let mut j = i;
            while chars[j] != 'r' {
                j += 1; // skip the b prefix
            }
            j += 1;
            let mut hashes = 0usize;
            while j < n && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            j += 1; // opening quote
            let body_start = j;
            let mut body_end = n;
            while j < n {
                if chars[j] == '"' {
                    let mut k = 0usize;
                    while k < hashes && j + 1 + k < n && chars[j + 1 + k] == '#' {
                        k += 1;
                    }
                    if k == hashes {
                        body_end = j;
                        j += 1 + hashes;
                        break;
                    }
                }
                bump_lines!(chars[j]);
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: chars[body_start..body_end].iter().collect(),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Plain / byte strings with escapes.
        if c == '"' || (c == 'b' && i + 1 < n && chars[i + 1] == '"') {
            let start_line = line;
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            let body_start = j;
            let mut body_end = n;
            while j < n {
                match chars[j] {
                    '\\' => {
                        j += 2;
                        continue;
                    }
                    '"' => {
                        body_end = j;
                        j += 1;
                        break;
                    }
                    ch => {
                        bump_lines!(ch);
                        j += 1;
                    }
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: chars[body_start..body_end.min(n)].iter().collect(),
                line: start_line,
            });
            i = j;
            continue;
        }
        // `'` — lifetime or char literal.
        if c == '\'' {
            // Escaped char is always a literal: '\n', '\''.
            if i + 1 < n && chars[i + 1] == '\\' {
                let mut j = i + 2;
                // Skip the escape payload up to the closing quote.
                while j < n && chars[j] != '\'' {
                    if chars[j] == '\\' {
                        j += 1;
                    }
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: chars[i..(j + 1).min(n)].iter().collect(),
                    line,
                });
                i = (j + 1).min(n);
                continue;
            }
            // 'x' (any single char, closing quote right after) = char
            // literal; otherwise a lifetime: ' followed by ident chars.
            if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: chars[i..i + 3].iter().collect(),
                    line,
                });
                i += 3;
                continue;
            }
            let mut j = i + 1;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Lifetime,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Numbers (identifiers starting with a digit are not Rust).
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            let hex = c == '0' && i + 1 < n && (chars[i + 1] == 'x' || chars[i + 1] == 'X');
            while j < n {
                let ch = chars[j];
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    // Decimal exponent sign: 1e-3 / 1E+3 (not for hex).
                    if !hex
                        && (ch == 'e' || ch == 'E')
                        && j + 1 < n
                        && (chars[j + 1] == '+' || chars[j + 1] == '-')
                        && j + 2 < n
                        && chars[j + 2].is_ascii_digit()
                    {
                        j += 2;
                    }
                    j += 1;
                    continue;
                }
                // A float's dot: digit follows, and not a `..` range.
                if ch == '.' && j + 1 < n && chars[j + 1].is_ascii_digit() && !hex {
                    j += 1;
                    continue;
                }
                break;
            }
            out.tokens.push(Token {
                kind: TokenKind::Num,
                text: chars[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Identifiers / keywords (incl. raw identifiers r#type).
        if is_ident_start(c) || (c == 'r' && i + 1 < n && chars[i + 1] == '#') {
            let mut j = i;
            if c == 'r'
                && i + 1 < n
                && chars[i + 1] == '#'
                && i + 2 < n
                && is_ident_start(chars[i + 2])
            {
                j = i + 2;
            }
            let start = j;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: chars[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Multi-char operators, longest first.
        let mut matched = false;
        for op in OPERATORS {
            let len = op.len();
            if i + len <= n && chars[i..i + len].iter().collect::<String>() == **op {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (*op).to_string(),
                    line,
                });
                i += len;
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        // Single-char punctuation.
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Is position `i` the start of a raw-string literal (`r"`, `r#`, `br"`,
/// `br#`)? Distinguishes raw strings from raw identifiers (`r#match`):
/// a raw string's hashes are followed by `"`.
fn raw_string_at(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if j >= chars.len() || chars[j] != 'r' {
        return false;
    }
    j += 1;
    while j < chars.len() && chars[j] == '#' {
        j += 1;
    }
    j < chars.len() && chars[j] == '"'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn nested_block_comments_do_not_leak_tokens() {
        let src = "a /* x /* y */ z */ b";
        assert_eq!(texts(src), vec!["a", "b"]);
    }

    #[test]
    fn raw_strings_with_hashes_swallow_quotes_and_braces() {
        let src = r####"let s = r#"if x { "quoted" }"#; next"####;
        let t = texts(src);
        assert_eq!(
            t,
            vec!["let", "s", "=", r#"if x { "quoted" }"#, ";", "next"]
        );
        let lexed = lex(src);
        assert_eq!(lexed.tokens[3].kind, TokenKind::Str);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a u8) { let c = 'a'; let nl = '\\n'; }");
        let lifetimes: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        let chars: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(chars, vec!["'a'", "'\\n'"]);
    }

    #[test]
    fn operators_lex_greedily() {
        assert_eq!(
            texts("a::b->c..=d<<=e"),
            vec!["a", "::", "b", "->", "c", "..=", "d", "<<=", "e"]
        );
    }

    #[test]
    fn floats_do_not_eat_ranges() {
        assert_eq!(texts("0..10"), vec!["0", "..", "10"]);
        assert_eq!(texts("1.5e-3"), vec!["1.5e-3"]);
        assert_eq!(texts("0xFF_u64"), vec!["0xFF_u64"]);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let lexed = lex("x\n// dpe-analyze: allow(r, reason = \"ok\")\ny");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("dpe-analyze"));
        assert_eq!(lexed.tokens[1].line, 3);
    }

    #[test]
    fn strings_with_escapes_terminate_correctly() {
        assert_eq!(
            texts(r#"let s = "a\"b"; x"#),
            vec!["let", "s", "=", r#"a\"b"#, ";", "x"]
        );
    }
}
