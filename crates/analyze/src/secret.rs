//! The secret-flow / constant-time policy pass.
//!
//! The paper's security argument assumes the provider learns nothing
//! beyond the permitted leakage profile; a single secret-dependent branch
//! or variable-time division next to key material can void that in
//! practice. This pass approximates "reachable from secret inputs" with
//! a call graph over the configured crypto crates, seeded from the
//! configured root functions (the ones that *receive* private keys, λ,
//! p/q, OPE keys, Montgomery limbs), then forbids timing-variable
//! constructs inside every reachable function:
//!
//! | rule | construct |
//! |---|---|
//! | `secret-branch` | `if` / `match` (data-dependent control flow) |
//! | `secret-division` | `/` `%` `/=` `%=` (variable-time division) |
//! | `secret-early-return` | `return` inside a nested block, and `?` |
//! | `secret-loop` | `while` / `loop` (variable trip counts) |
//!
//! There is **no dataflow analysis**: every such construct in a reachable
//! function is flagged, whether or not the operands are actually secret.
//! That over-approximation is the point — each occurrence is either
//! rewritten branchless, explicitly waived inline with a mandatory
//! justification (`// dpe-analyze: allow(rule, reason = "…")`), or
//! carried as ratcheted debt in `ANALYZE_BASELINE.json` where it can
//! only shrink. `for` loops are deliberately out of scope (their trip
//! counts are usually public limb counts); the limitation is documented
//! in `ANALYZE.md`.

use crate::config::Config;
use crate::engine::WaiverIndex;
use crate::findings::{finding_key, Finding};
use crate::lexer::TokenKind;
use crate::model::{FileModel, FunctionModel};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Runs the pass over the scanned workspace.
pub fn run(files: &[FileModel], config: &Config, waivers: &mut WaiverIndex) -> Vec<Finding> {
    let in_scope: Vec<&FunctionModel> = files
        .iter()
        .filter(|f| config.secret_crates.iter().any(|c| c == &f.crate_name))
        .flat_map(|f| f.functions.iter())
        .filter(|f| !f.in_test)
        .collect();
    let reachable = reachable_set(&in_scope, config);
    let mut findings = Vec::new();
    for f in &in_scope {
        if !reachable.contains(f.qualified.as_str()) {
            continue;
        }
        findings.extend(scan_function(f, waivers));
    }
    findings
}

/// BFS over the approximate call graph from the configured secret roots.
/// Returns the qualified names of reachable functions (roots included).
pub fn reachable_set<'a>(functions: &[&'a FunctionModel], config: &Config) -> BTreeSet<&'a str> {
    // Indexes: bare name → functions, Type::method → functions.
    let mut by_name: BTreeMap<&str, Vec<&FunctionModel>> = BTreeMap::new();
    let mut by_typed: BTreeMap<&str, Vec<&FunctionModel>> = BTreeMap::new();
    for f in functions {
        by_name.entry(f.name.as_str()).or_default().push(f);
        if let Some(t) = &f.type_qualified {
            by_typed.entry(t.as_str()).or_default().push(f);
        }
    }
    let ignore: BTreeSet<&str> = config
        .secret_ignore_calls
        .iter()
        .map(|s| s.as_str())
        .collect();

    let mut reachable: BTreeSet<&str> = BTreeSet::new();
    let mut queue: VecDeque<&FunctionModel> = VecDeque::new();
    for f in functions {
        if config.secret_roots.iter().any(|root| root_matches(root, f))
            && reachable.insert(f.qualified.as_str())
        {
            queue.push_back(f);
        }
    }
    while let Some(f) = queue.pop_front() {
        for call in &f.calls {
            if ignore.contains(call.name.as_str()) {
                continue;
            }
            let targets = if call.name.contains("::") {
                by_typed.get(call.name.as_str())
            } else {
                by_name.get(call.name.as_str())
            };
            for target in targets.into_iter().flatten() {
                if reachable.insert(target.qualified.as_str()) {
                    queue.push_back(target);
                }
            }
        }
    }
    reachable
}

/// Does a configured root name designate this function? Roots are either
/// `Type::method` (matched against the impl-qualified name) or a bare
/// function name, optionally prefixed by crate/module path segments that
/// are matched as a suffix of the fully qualified name.
fn root_matches(root: &str, f: &FunctionModel) -> bool {
    if let Some(t) = &f.type_qualified {
        if t == root {
            return true;
        }
    }
    f.name == root || f.qualified == root || f.qualified.ends_with(&format!("::{root}"))
}

fn scan_function(f: &FunctionModel, waivers: &mut WaiverIndex) -> Vec<Finding> {
    let mut findings = Vec::new();
    // Occurrence counters per (rule, detail) keep keys stable under
    // unrelated edits elsewhere in the file.
    let mut occurrence: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut push = |rule: &str,
                    detail: &str,
                    line: u32,
                    message: String,
                    occurrence: &mut BTreeMap<(String, String), usize>,
                    waivers: &mut WaiverIndex| {
        let idx = occurrence
            .entry((rule.to_string(), detail.to_string()))
            .or_insert(0);
        let key = finding_key(rule, &f.file, &f.qualified, detail, *idx);
        *idx += 1;
        if waivers.is_waived(&f.file, rule, line) {
            return;
        }
        findings.push(Finding {
            key,
            rule: rule.to_string(),
            file: f.file.clone(),
            line,
            function: f.qualified.clone(),
            message,
        });
    };

    let mut i = 0usize;
    let body = &f.body;
    while i < body.len() {
        let bt = &body[i];
        let t = &bt.token;
        // Skip attribute groups inside bodies (`#[cfg(…)]` carries `=`
        // and `/`-free content, but stay safe and skip it wholesale).
        if t.text == "#" && body.get(i + 1).is_some_and(|n| n.token.text == "[") {
            let mut depth = 0usize;
            i += 1;
            while i < body.len() {
                match body[i].token.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            i += 1;
            continue;
        }
        match (t.kind, t.text.as_str()) {
            (TokenKind::Ident, kw @ ("if" | "match")) => push(
                "secret-branch",
                kw,
                t.line,
                format!("`{kw}` in secret-reachable `{}`: secret-dependent control flow is observable timing", f.name),
                &mut occurrence,
                waivers,
            ),
            (TokenKind::Punct, op @ ("/" | "%" | "/=" | "%=")) => push(
                "secret-division",
                op,
                t.line,
                format!("`{op}` in secret-reachable `{}`: division/remainder time varies with operand values", f.name),
                &mut occurrence,
                waivers,
            ),
            (TokenKind::Ident, "return") if bt.depth >= 2 => push(
                "secret-early-return",
                "return",
                t.line,
                format!("conditional `return` in secret-reachable `{}`: exit point depends on data", f.name),
                &mut occurrence,
                waivers,
            ),
            (TokenKind::Punct, "?") => push(
                "secret-early-return",
                "?",
                t.line,
                format!("`?` in secret-reachable `{}`: error path exits early on data-dependent condition", f.name),
                &mut occurrence,
                waivers,
            ),
            (TokenKind::Ident, kw @ ("while" | "loop")) => push(
                "secret-loop",
                kw,
                t.line,
                format!("`{kw}` in secret-reachable `{}`: trip count may depend on secret values", f.name),
                &mut occurrence,
                waivers,
            ),
            _ => {}
        }
        i += 1;
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::scan_file;

    fn config(roots: &[&str]) -> Config {
        Config {
            forbid_unsafe_crates: vec![],
            secret_crates: vec!["c".into()],
            secret_roots: roots.iter().map(|s| s.to_string()).collect(),
            secret_ignore_calls: vec!["clone".into()],
            lock_crates: vec![],
            no_unwrap_crates: vec![],
        }
    }

    fn run_on(src: &str, roots: &[&str]) -> Vec<Finding> {
        let file = scan_file("c", "src/lib.rs", src);
        let files = vec![file];
        let mut waivers = WaiverIndex::new(&files);
        run(&files, &config(roots), &mut waivers)
    }

    #[test]
    fn root_function_branches_are_flagged() {
        let f = run_on(
            "fn decrypt(k: &Key) { if k.bit(0) { other(); } }",
            &["decrypt"],
        );
        assert!(f.iter().any(|f| f.rule == "secret-branch"));
    }

    #[test]
    fn reachability_extends_through_calls_but_not_to_unrelated_fns() {
        let src = "fn decrypt(k: &Key) { helper(k); }\nfn helper(k: &Key) { let x = a % b; }\nfn unrelated() { let y = a % b; }";
        let f = run_on(src, &["decrypt"]);
        assert!(f
            .iter()
            .any(|f| f.rule == "secret-division" && f.function.contains("helper")));
        assert!(!f.iter().any(|f| f.function.contains("unrelated")));
    }

    #[test]
    fn typed_roots_and_method_calls_resolve() {
        let src =
            "impl Key { fn decrypt(&self) { self.reduce(); } fn reduce(&self) { while x { } } }";
        let f = run_on(src, &["Key::decrypt"]);
        assert!(f
            .iter()
            .any(|f| f.rule == "secret-loop" && f.function.contains("reduce")));
    }

    #[test]
    fn waivers_suppress_and_mark_used() {
        let src = "fn decrypt(k: &Key) {\n    // dpe-analyze: allow(secret-branch, reason = \"branch is on the public modulus size\")\n    if k.public_bits() > 64 { other(); }\n}";
        let file = scan_file("c", "src/lib.rs", src);
        let files = vec![file];
        let mut waivers = WaiverIndex::new(&files);
        let f = run(&files, &config(&["decrypt"]), &mut waivers);
        assert!(!f.iter().any(|f| f.rule == "secret-branch"), "{f:?}");
        assert!(waivers.unused().is_empty());
    }

    #[test]
    fn early_return_and_question_mark_flagged() {
        let src = "fn decrypt(k: &Key) -> Result<u8, E> { k.validate()?; if bad { return Err(E); } Ok(0) }";
        let f = run_on(src, &["decrypt"]);
        let rules: Vec<&str> = f.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"secret-early-return"));
        // Both the `?` and the conditional `return` are separate findings.
        assert_eq!(
            f.iter().filter(|f| f.rule == "secret-early-return").count(),
            2
        );
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)] mod tests { fn decrypt(k: &Key) { if x {} } }";
        assert!(run_on(src, &["decrypt"]).is_empty());
    }

    #[test]
    fn keys_are_stable_per_occurrence_not_per_line() {
        let src = "fn decrypt(k: &Key) { let a = x % m; let b = y % m; }";
        let f = run_on(src, &["decrypt"]);
        let keys: Vec<&str> = f.iter().map(|f| f.key.as_str()).collect();
        assert_eq!(keys.len(), 2);
        assert!(keys[0].ends_with("|%|0"));
        assert!(keys[1].ends_with("|%|1"));
    }
}
