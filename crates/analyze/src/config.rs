//! `analyze.toml` — the policy file — and the TOML subset it needs.
//!
//! The parser covers exactly what the policy file uses: `[section]`
//! headers, `key = "string"`, `key = ["a", "b", …]` (single- or
//! multi-line), `key = true/false`, `key = <integer>`, and `#` comments.
//! Anything else is a hard error: a policy file that silently
//! half-parses would silently weaken the lints it configures.

use std::collections::BTreeMap;

/// A parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    List(Vec<String>),
    Bool(bool),
    Int(i64),
}

/// Parsed sections → keys → values.
#[derive(Debug, Default)]
pub struct Toml {
    sections: BTreeMap<String, BTreeMap<String, Value>>,
}

impl Toml {
    pub fn parse(text: &str) -> Result<Toml, String> {
        let mut toml = Toml::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((ln, raw)) = lines.next() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                toml.sections.entry(section.clone()).or_default();
                continue;
            }
            let Some((key, rest)) = line.split_once('=') else {
                return Err(format!(
                    "analyze.toml line {}: expected `key = value`",
                    ln + 1
                ));
            };
            let key = key.trim().to_string();
            let mut rest = rest.trim().to_string();
            // Multi-line array: keep consuming lines until the `]`.
            if rest.starts_with('[') && !rest.contains(']') {
                for (_, cont) in lines.by_ref() {
                    let cont = strip_comment(cont);
                    rest.push(' ');
                    rest.push_str(cont.trim());
                    if cont.contains(']') {
                        break;
                    }
                }
            }
            let value = parse_value(rest.trim()).ok_or_else(|| {
                format!(
                    "analyze.toml line {}: unparseable value for `{key}`",
                    ln + 1
                )
            })?;
            toml.sections
                .entry(section.clone())
                .or_default()
                .insert(key, value);
        }
        Ok(toml)
    }

    /// String list at `[section] key`, or an empty list when absent.
    pub fn list(&self, section: &str, key: &str) -> Vec<String> {
        match self.sections.get(section).and_then(|s| s.get(key)) {
            Some(Value::List(v)) => v.clone(),
            Some(Value::Str(s)) => vec![s.clone()],
            _ => Vec::new(),
        }
    }

    pub fn str(&self, section: &str, key: &str) -> Option<String> {
        match self.sections.get(section).and_then(|s| s.get(key)) {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        }
    }

    pub fn has_section(&self, section: &str) -> bool {
        self.sections.contains_key(section)
    }
}

fn strip_comment(line: &str) -> &str {
    // A `#` inside a quoted string is content, not a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str) -> Option<Value> {
    if let Some(body) = text.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        let mut items = Vec::new();
        for item in split_top_level(body) {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            items.push(item.strip_prefix('"')?.strip_suffix('"')?.to_string());
        }
        return Some(Value::List(items));
    }
    if let Some(s) = text.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
        return Some(Value::Str(s.to_string()));
    }
    match text {
        "true" => return Some(Value::Bool(true)),
        "false" => return Some(Value::Bool(false)),
        _ => {}
    }
    text.parse::<i64>().ok().map(Value::Int)
}

/// Splits on commas that are not inside quotes.
fn split_top_level(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in body.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    out.push(cur);
    out
}

/// The analyzer's resolved policy.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose root files must carry `#![forbid(unsafe_code)]`.
    pub forbid_unsafe_crates: Vec<String>,
    /// Crates the secret-flow pass scans.
    pub secret_crates: Vec<String>,
    /// Functions whose inputs are secret (`Type::method` or bare names,
    /// matched as suffixes of the qualified name).
    pub secret_roots: Vec<String>,
    /// Call names the reachability walk ignores (ubiquitous std-ish names
    /// that would otherwise glue unrelated functions together).
    pub secret_ignore_calls: Vec<String>,
    /// Crates the lock-order pass scans.
    pub lock_crates: Vec<String>,
    /// Crates where bare `.unwrap()` is banned in non-test code.
    pub no_unwrap_crates: Vec<String>,
}

impl Config {
    pub fn from_toml(text: &str) -> Result<Config, String> {
        let toml = Toml::parse(text)?;
        for required in ["forbid_unsafe", "secret_flow", "locks", "no_unwrap"] {
            if !toml.has_section(required) {
                return Err(format!(
                    "analyze.toml: missing required [{required}] section"
                ));
            }
        }
        Ok(Config {
            forbid_unsafe_crates: toml.list("forbid_unsafe", "crates"),
            secret_crates: toml.list("secret_flow", "crates"),
            secret_roots: toml.list("secret_flow", "roots"),
            secret_ignore_calls: toml.list("secret_flow", "ignore_calls"),
            lock_crates: toml.list("locks", "crates"),
            no_unwrap_crates: toml.list("no_unwrap", "crates"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_strings_and_multiline_lists() {
        let toml = Toml::parse(
            "# header\n[a]\nx = \"one\"\nys = [\n  \"p\", # inline comment\n  \"q\",\n]\n[b.c]\nflag = true\nn = 7\n",
        )
        .unwrap();
        assert_eq!(toml.str("a", "x").as_deref(), Some("one"));
        assert_eq!(toml.list("a", "ys"), vec!["p", "q"]);
        assert!(toml.has_section("b.c"));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let toml = Toml::parse("[s]\nk = \"a#b\"\n").unwrap();
        assert_eq!(toml.str("s", "k").as_deref(), Some("a#b"));
    }

    #[test]
    fn garbage_is_a_hard_error() {
        assert!(Toml::parse("[s]\nnot a kv pair\n").is_err());
        assert!(Toml::parse("[s]\nk = @nope\n").is_err());
    }

    #[test]
    fn config_requires_all_policy_sections() {
        let err = Config::from_toml("[forbid_unsafe]\ncrates = []\n").unwrap_err();
        assert!(err.contains("secret_flow"), "{err}");
    }
}
