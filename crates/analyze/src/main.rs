//! The `dpe-analyze` CLI.
//!
//! ```text
//! cargo run -p dpe-analyze --                 # report findings vs baseline
//! cargo run -p dpe-analyze -- --ci            # same, exit 1 on any drift
//! cargo run -p dpe-analyze -- --bless         # rewrite ANALYZE_BASELINE.json (shrink only)
//! cargo run -p dpe-analyze -- --bless --allow-growth   # …allow it to grow (new debt)
//! cargo run -p dpe-analyze -- --json OUT.json # also write the findings artifact
//! cargo run -p dpe-analyze -- --root DIR      # analyze another checkout
//! ```

#![forbid(unsafe_code)]

use dpe_analyze::config::Config;
use dpe_analyze::engine::analyze_workspace;
use dpe_analyze::findings::{baseline_from_json, baseline_to_json, findings_to_json, ratchet};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    ci: bool,
    bless: bool,
    allow_growth: bool,
    json: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: default_root(),
        ci: false,
        bless: false,
        allow_growth: false,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ci" => args.ci = true,
            "--bless" => args.bless = true,
            "--allow-growth" => args.allow_growth = true,
            "--json" => {
                args.json = Some(PathBuf::from(
                    it.next().ok_or("--json needs a path argument")?,
                ));
            }
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a path argument")?);
            }
            "--help" | "-h" => {
                println!(
                    "dpe-analyze: secret-flow, lock-order and hygiene lints for the DPE workspace\n\
                     \n\
                     --ci            exit nonzero on any new or stale finding\n\
                     --bless         rewrite ANALYZE_BASELINE.json from current findings\n\
                     --allow-growth  permit --bless to grow the baseline\n\
                     --json PATH     write the machine-readable findings report\n\
                     --root DIR      workspace root (default: nearest dir with analyze.toml)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

/// Nearest ancestor of the current directory containing `analyze.toml`.
fn default_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("analyze.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let policy_path = args.root.join("analyze.toml");
    let policy = std::fs::read_to_string(&policy_path)
        .map_err(|e| format!("{}: {e}", policy_path.display()))?;
    let config = Config::from_toml(&policy)?;
    let findings = analyze_workspace(&args.root, &config)?;

    if let Some(path) = &args.json {
        std::fs::write(path, findings_to_json(&findings))
            .map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("wrote findings report to {}", path.display());
    }

    let baseline_path = args.root.join("ANALYZE_BASELINE.json");
    let keys: BTreeSet<String> = findings.iter().map(|f| f.key.clone()).collect();

    if args.bless {
        let old = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => Some(baseline_from_json(&text)?),
            Err(_) => None,
        };
        if let Some(old) = &old {
            let grown: Vec<&String> = keys.difference(old).collect();
            if !grown.is_empty() && !args.allow_growth {
                eprintln!(
                    "--bless would ADD {} finding(s) to the baseline; the ratchet only shrinks.",
                    grown.len()
                );
                for k in grown {
                    eprintln!("  + {k}");
                }
                eprintln!(
                    "Fix or waive them, or pass --allow-growth to accept new debt explicitly."
                );
                return Ok(false);
            }
        }
        std::fs::write(&baseline_path, baseline_to_json(&keys))
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        println!(
            "blessed {} finding(s) into {}",
            keys.len(),
            baseline_path.display()
        );
        return Ok(true);
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => baseline_from_json(&text)?,
        Err(e) => {
            return Err(format!(
                "{}: {e}\n(run `cargo run -p dpe-analyze -- --bless` to create it)",
                baseline_path.display()
            ))
        }
    };
    let r = ratchet(&findings, &baseline);
    println!(
        "dpe-analyze: {} finding(s), baseline {} — {} new, {} stale",
        findings.len(),
        baseline.len(),
        r.new.len(),
        r.stale.len()
    );
    for f in &r.new {
        println!(
            "NEW  {}:{} [{}] {} — {}",
            f.file, f.line, f.rule, f.function, f.message
        );
    }
    for k in &r.stale {
        println!("STALE {k}");
    }
    if !r.new.is_empty() {
        println!("New findings: fix them, add a justified inline waiver, or (for accepted debt) re-bless with --allow-growth.");
    }
    if !r.stale.is_empty() {
        println!("Stale baseline entries (fixed findings): run `cargo run -p dpe-analyze -- --bless` to shrink the baseline.");
    }
    if !r.is_clean() && !args.ci {
        println!("(advisory mode: pass --ci to turn this into a failure)");
    }
    Ok(!args.ci || r.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("dpe-analyze: {e}");
            ExitCode::from(2)
        }
    }
}
