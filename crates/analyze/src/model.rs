//! From token streams to a per-function model of the workspace.
//!
//! The scanner walks a file's tokens once, tracking module / `impl` /
//! function nesting by brace depth, and produces a [`FunctionModel`] per
//! `fn`: its qualified name (`crate::module::Type::method`), its body
//! tokens annotated with the brace depth *relative to the body*, the
//! calls it makes, and whether it is test-only code. Waiver comments
//! (`// dpe-analyze: allow(rule, reason = "…")`) are collected per file.
//!
//! This is deliberately an approximation — no name resolution, no type
//! inference. Passes that consume it over-approximate (a method call
//! matches every known function of that name) and rely on the waiver +
//! baseline machinery to stay actionable rather than on precision.

use crate::lexer::{lex, Token, TokenKind};

/// One body token plus its brace depth relative to the function body
/// (the body's outermost statements sit at depth 1).
#[derive(Debug, Clone)]
pub struct BodyToken {
    pub token: Token,
    pub depth: u32,
}

/// A call site observed in a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// `Type::method` when the call was path-qualified, else the bare
    /// function / method name.
    pub name: String,
    pub line: u32,
}

/// One scanned function.
#[derive(Debug, Clone)]
pub struct FunctionModel {
    /// `crate_name::module::…::Type::fn_name` (modules from `mod` items,
    /// not file paths; the file is carried separately).
    pub qualified: String,
    /// Unqualified name, and `Type::name` when inside an `impl`.
    pub name: String,
    pub type_qualified: Option<String>,
    pub file: String,
    pub crate_name: String,
    pub start_line: u32,
    /// Signature tokens between the function name and the body `{` (or
    /// the `;` of a bodyless declaration) — return types live here.
    pub signature: Vec<Token>,
    pub body: Vec<BodyToken>,
    pub calls: Vec<CallSite>,
    /// Inside `#[cfg(test)]` / `#[test]` / a `tests` module.
    pub in_test: bool,
}

/// An inline waiver: `// dpe-analyze: allow(rule, reason = "…")`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    pub rule: String,
    pub reason: String,
    pub line: u32,
}

/// A malformed waiver comment (empty/missing reason): always an error —
/// an undocumented suppression is exactly what the pass exists to forbid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadWaiver {
    pub line: u32,
    pub message: String,
}

/// One scanned file.
#[derive(Debug)]
pub struct FileModel {
    pub path: String,
    pub crate_name: String,
    pub functions: Vec<FunctionModel>,
    pub waivers: Vec<Waiver>,
    pub bad_waivers: Vec<BadWaiver>,
    /// Does the file carry `#![forbid(unsafe_code)]`? Only meaningful for
    /// crate roots.
    pub has_forbid_unsafe: bool,
    /// Every source line that carries at least one non-comment token —
    /// used to decide whether a waiver comment is adjacent to the code it
    /// waives (only waiver-comment lines may sit in between).
    pub token_lines: std::collections::BTreeSet<u32>,
}

/// Scans one file's source into its model.
pub fn scan_file(crate_name: &str, path: &str, source: &str) -> FileModel {
    let lexed = lex(source);
    let (waivers, bad_waivers) = parse_waivers(&lexed.comments);
    let mut scanner = Scanner {
        crate_name,
        path,
        tokens: &lexed.tokens,
        pos: 0,
        functions: Vec::new(),
    };
    scanner.scan_items(&mut Vec::new(), false);
    let functions = scanner.functions;
    FileModel {
        path: path.to_string(),
        crate_name: crate_name.to_string(),
        functions,
        waivers,
        bad_waivers,
        has_forbid_unsafe: has_forbid_unsafe(&lexed.tokens),
        token_lines: lexed.tokens.iter().map(|t| t.line).collect(),
    }
}

/// `#![forbid(unsafe_code)]` as a token sequence, anywhere in the file
/// (crate roots put it at the top, but position is not load-bearing).
fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    tokens.windows(7).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == "forbid"
            && w[4].text == "("
            && w[5].text == "unsafe_code"
            && w[6].text == ")"
    })
}

/// Parses waiver annotations out of the comment list.
fn parse_waivers(comments: &[crate::lexer::Comment]) -> (Vec<Waiver>, Vec<BadWaiver>) {
    let mut waivers = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        // Doc comments (`///` / `//!`, text starting with the extra marker)
        // are prose *about* waivers, not waivers; only plain `//` comments
        // can carry one.
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let Some(at) = c.text.find("dpe-analyze:") else {
            continue;
        };
        let rest = c.text[at + "dpe-analyze:".len()..].trim();
        let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.rfind(')').map(|e| &r[..e]))
        else {
            bad.push(BadWaiver {
                line: c.line,
                message: "malformed waiver: expected `dpe-analyze: allow(<rule>, reason = \"…\")`"
                    .to_string(),
            });
            continue;
        };
        let (rule, reason) = match args.split_once(',') {
            Some((r, rest)) => (r.trim().to_string(), rest.trim()),
            None => (args.trim().to_string(), ""),
        };
        let reason = reason
            .strip_prefix("reason")
            .map(|r| r.trim_start().strip_prefix('=').unwrap_or(r).trim())
            .unwrap_or("")
            .trim_matches('"')
            .trim();
        if rule.is_empty() || reason.is_empty() {
            bad.push(BadWaiver {
                line: c.line,
                message: format!(
                    "waiver for `{rule}` has no justification: a reason = \"…\" is mandatory"
                ),
            });
            continue;
        }
        waivers.push(Waiver {
            rule,
            reason: reason.to_string(),
            line: c.line,
        });
    }
    (waivers, bad)
}

struct Scanner<'a> {
    crate_name: &'a str,
    path: &'a str,
    tokens: &'a [Token],
    pos: usize,
    functions: Vec<FunctionModel>,
}

impl<'a> Scanner<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        self.pos += 1;
        t
    }

    /// Skips a balanced group that starts at the current `open` token.
    /// Returns the content tokens (exclusive of delimiters).
    fn skip_group(&mut self, open: &str, close: &str) -> &'a [Token] {
        debug_assert_eq!(self.tokens[self.pos].text, open);
        let start = self.pos + 1;
        let mut depth = 0usize;
        while let Some(t) = self.bump() {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return &self.tokens[start..self.pos - 1];
                }
            }
        }
        &self.tokens[start..self.tokens.len()]
    }

    /// Scans items at the current nesting level until the closing `}` of
    /// the enclosing block (or EOF). `scope` is the module/type path so
    /// far; `in_test` is inherited from enclosing `#[cfg(test)]` items.
    fn scan_items(&mut self, scope: &mut Vec<String>, in_test: bool) {
        // Attributes seen since the last item, pending application.
        let mut pending_attrs: Vec<String> = Vec::new();
        while let Some(t) = self.peek() {
            match (t.kind, t.text.as_str()) {
                (TokenKind::Punct, "}") => {
                    self.bump();
                    return;
                }
                (TokenKind::Punct, "#") => {
                    self.bump();
                    if self.peek().is_some_and(|t| t.text == "!") {
                        self.bump();
                    }
                    if self.peek().is_some_and(|t| t.text == "[") {
                        let content = self.skip_group("[", "]");
                        pending_attrs.push(
                            content
                                .iter()
                                .map(|t| t.text.as_str())
                                .collect::<Vec<_>>()
                                .join(" "),
                        );
                    }
                }
                (TokenKind::Ident, "mod") => {
                    self.bump();
                    let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                    let test_mod = in_test
                        || name == "tests"
                        || pending_attrs.iter().any(|a| a.contains("cfg ( test )"));
                    pending_attrs.clear();
                    match self.peek().map(|t| t.text.as_str()) {
                        Some("{") => {
                            self.bump();
                            scope.push(name);
                            self.scan_items(scope, test_mod);
                            scope.pop();
                        }
                        _ => {
                            // `mod name;` — out-of-line, handled when that
                            // file is scanned.
                            self.bump();
                        }
                    }
                }
                (TokenKind::Ident, "impl") => {
                    self.bump();
                    let type_name = self.scan_impl_header();
                    let impl_test =
                        in_test || pending_attrs.iter().any(|a| a.contains("cfg ( test )"));
                    pending_attrs.clear();
                    if self.peek().is_some_and(|t| t.text == "{") {
                        self.bump();
                        scope.push(type_name);
                        self.scan_items(scope, impl_test);
                        scope.pop();
                    }
                }
                (TokenKind::Ident, "trait") => {
                    // Trait bodies hold default methods; scan them like an
                    // impl so their code is not invisible to the passes.
                    self.bump();
                    let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                    let trait_test =
                        in_test || pending_attrs.iter().any(|a| a.contains("cfg ( test )"));
                    pending_attrs.clear();
                    while let Some(t) = self.peek() {
                        if t.text == "{" || t.text == ";" {
                            break;
                        }
                        self.bump();
                    }
                    if self.peek().is_some_and(|t| t.text == "{") {
                        self.bump();
                        scope.push(name);
                        self.scan_items(scope, trait_test);
                        scope.pop();
                    }
                }
                (TokenKind::Ident, "fn") => {
                    let fn_test = in_test
                        || pending_attrs.iter().any(|a| {
                            a == "test" || a.contains("cfg ( test )") || a.starts_with("test ")
                        });
                    pending_attrs.clear();
                    self.bump();
                    self.scan_fn(scope, fn_test);
                }
                (TokenKind::Punct, "{") => {
                    // A stray block at item level (e.g. const body): recurse
                    // so nested fns are still found.
                    self.bump();
                    self.scan_items(scope, in_test);
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// After the `impl` keyword: skip generics, read the implemented
    /// type's last path segment (the one after `for` when present).
    fn scan_impl_header(&mut self) -> String {
        let mut last_ident = String::new();
        let mut after_for: Option<String> = None;
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "{" => break,
                "where" if angle_depth == 0 => break,
                "<" => {
                    angle_depth += 1;
                    self.bump();
                }
                ">" => {
                    angle_depth -= 1;
                    self.bump();
                }
                ">>" => {
                    angle_depth -= 2;
                    self.bump();
                }
                "for" if angle_depth == 0 => {
                    after_for = Some(String::new());
                    self.bump();
                }
                _ => {
                    if t.kind == TokenKind::Ident && angle_depth == 0 {
                        match &mut after_for {
                            Some(s) => *s = t.text.clone(),
                            None => last_ident = t.text.clone(),
                        }
                    }
                    self.bump();
                }
            }
        }
        after_for.filter(|s| !s.is_empty()).unwrap_or(last_ident)
    }

    /// After the `fn` keyword: read the name, skip the signature, and (if
    /// there is a body) collect depth-annotated body tokens and calls.
    fn scan_fn(&mut self, scope: &[String], in_test: bool) {
        let Some(name_tok) = self.bump() else { return };
        let name = name_tok.text.clone();
        let start_line = name_tok.line;
        // Signature: until `{` (body) or `;` (decl) at angle/paren depth 0.
        let mut angle_depth = 0i32;
        let mut paren_depth = 0i32;
        let mut signature: Vec<Token> = Vec::new();
        loop {
            let Some(t) = self.peek() else { return };
            match t.text.as_str() {
                "<" => angle_depth += 1,
                ">" => angle_depth -= 1,
                ">>" => angle_depth -= 2,
                "->" => {}
                "(" | "[" => paren_depth += 1,
                ")" | "]" => paren_depth -= 1,
                "{" if angle_depth <= 0 && paren_depth == 0 => break,
                ";" if angle_depth <= 0 && paren_depth == 0 => {
                    self.bump();
                    return; // trait method declaration — no body
                }
                _ => {}
            }
            signature.push(t.clone());
            self.bump();
        }
        // Body: consume the brace group, recording depth per token. Nested
        // `fn` items inside the body become their own models too (scanned
        // from the same token range afterwards would double-count; instead
        // we model nested fns as part of the enclosing body, which is the
        // conservative choice for reachability).
        self.bump(); // `{`
        let mut depth = 1u32;
        let mut body: Vec<BodyToken> = Vec::new();
        while let Some(t) = self.bump() {
            match t.text.as_str() {
                "{" => {
                    body.push(BodyToken {
                        token: t.clone(),
                        depth,
                    });
                    depth += 1;
                    continue;
                }
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                    body.push(BodyToken {
                        token: t.clone(),
                        depth,
                    });
                    continue;
                }
                _ => body.push(BodyToken {
                    token: t.clone(),
                    depth,
                }),
            }
        }
        let calls = extract_calls(&body);
        let type_qualified = scope.last().and_then(|s| {
            // Only impl/trait scopes qualify a method name; a plain module
            // scope does not produce `Type::method`. Heuristic: type names
            // in this workspace are CamelCase, modules snake_case.
            s.chars()
                .next()
                .filter(|c| c.is_uppercase())
                .map(|_| format!("{s}::{name}"))
        });
        let qualified = {
            let mut parts = vec![self.crate_name.to_string()];
            parts.extend(scope.iter().cloned());
            parts.push(name.clone());
            parts.join("::")
        };
        self.functions.push(FunctionModel {
            qualified,
            name,
            type_qualified,
            file: self.path.to_string(),
            crate_name: self.crate_name.to_string(),
            start_line,
            signature,
            body,
            calls,
            in_test,
        });
    }
}

/// Pulls call sites out of a token body: `name(…)`, `path::name(…)`,
/// `.method(…)`, and `Type::method` references (callable paths passed to
/// higher-order fns count too — conservative for reachability).
fn extract_calls(body: &[BodyToken]) -> Vec<CallSite> {
    let mut calls = Vec::new();
    for i in 0..body.len() {
        let t = &body[i].token;
        if t.kind != TokenKind::Ident {
            continue;
        }
        if KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let next = body.get(i + 1).map(|b| b.token.text.as_str());
        // `name (` — direct call or macro-ish; `name ::` handled via the
        // *last* segment's own match, plus the two-segment form below.
        let is_call = matches!(next, Some("(")) || matches!(next, Some("!"));
        let prev = i.checked_sub(1).map(|j| body[j].token.text.as_str());
        let qualified =
            if prev == Some("::") && i >= 2 && body[i - 2].token.kind == TokenKind::Ident {
                Some(format!("{}::{}", body[i - 2].token.text, t.text))
            } else {
                None
            };
        if is_call || (qualified.is_some() && next != Some("::")) {
            if let Some(q) = qualified {
                calls.push(CallSite {
                    name: q,
                    line: t.line,
                });
            }
            calls.push(CallSite {
                name: t.text.clone(),
                line: t.line,
            });
        }
    }
    calls
}

const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "loop", "for", "in", "let", "mut", "fn", "return", "break",
    "continue", "move", "ref", "pub", "crate", "super", "self", "Self", "use", "mod", "impl",
    "trait", "struct", "enum", "union", "const", "static", "type", "where", "as", "dyn", "unsafe",
    "extern", "true", "false", "async", "await",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> FileModel {
        scan_file("testcrate", "src/lib.rs", src)
    }

    #[test]
    fn functions_get_qualified_names_through_mods_and_impls() {
        let m =
            scan("mod inner { pub struct Foo; impl Foo { pub fn go(&self) {} } pub fn free() {} }");
        let names: Vec<&str> = m.functions.iter().map(|f| f.qualified.as_str()).collect();
        assert_eq!(
            names,
            vec!["testcrate::inner::Foo::go", "testcrate::inner::free"]
        );
        assert_eq!(m.functions[0].type_qualified.as_deref(), Some("Foo::go"));
        assert_eq!(m.functions[1].type_qualified, None);
    }

    #[test]
    fn trait_impls_qualify_by_the_implemented_type() {
        let m = scan("impl Display for Wrapper { fn fmt(&self) {} }");
        assert_eq!(
            m.functions[0].type_qualified.as_deref(),
            Some("Wrapper::fmt")
        );
    }

    #[test]
    fn cfg_test_modules_and_test_fns_are_marked() {
        let m = scan("fn live() {} #[cfg(test)] mod tests { #[test] fn t() {} fn helper() {} }");
        let by_name = |n: &str| m.functions.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("live").in_test);
        assert!(by_name("t").in_test);
        assert!(by_name("helper").in_test);
    }

    #[test]
    fn body_depth_tracks_nesting() {
        let m = scan("fn f() { if x { y(); } z(); }");
        let f = &m.functions[0];
        let depth_of = |name: &str| {
            f.body
                .iter()
                .find(|b| b.token.text == name)
                .map(|b| b.depth)
                .unwrap()
        };
        assert_eq!(depth_of("y"), 2);
        assert_eq!(depth_of("z"), 1);
    }

    #[test]
    fn calls_include_methods_and_qualified_paths() {
        let m = scan("fn f() { a.method(); Type::assoc(1); free(2); }");
        let f = &m.functions[0];
        let names: Vec<&str> = f.calls.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"method"));
        assert!(names.contains(&"Type::assoc"));
        assert!(names.contains(&"assoc"));
        assert!(names.contains(&"free"));
    }

    #[test]
    fn waivers_parse_and_bad_waivers_are_flagged() {
        let m = scan(
            "// dpe-analyze: allow(secret-branch, reason = \"range check on public modulus\")\nfn f() {}\n// dpe-analyze: allow(secret-branch)\nfn g() {}",
        );
        assert_eq!(m.waivers.len(), 1);
        assert_eq!(m.waivers[0].rule, "secret-branch");
        assert!(m.waivers[0].reason.contains("public modulus"));
        assert_eq!(
            m.bad_waivers.len(),
            1,
            "reason-less waiver must be rejected"
        );
    }

    #[test]
    fn forbid_unsafe_detection() {
        assert!(scan("#![forbid(unsafe_code)]\nfn f() {}").has_forbid_unsafe);
        assert!(!scan("#![deny(unsafe_code)]\nfn f() {}").has_forbid_unsafe);
    }

    #[test]
    fn adversarial_syntax_does_not_derail_the_scanner() {
        // Nested comments containing fake fns, raw strings with braces,
        // chars vs lifetimes, attributes with brackets.
        let src = r####"
/* fn fake() { /* } */ } */
#[cfg(feature = "x", any(test))]
fn real<'a>(x: &'a str) -> char {
    let s = r#"} fn not_a_fn() { if true {} "#;
    let c = '}';
    let lt: &'a str = x;
    c
}
"####;
        let m = scan(src);
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.functions[0].name, "real");
        // The raw string's braces must not have ended the body early: the
        // char literal assignment after it is inside the body.
        assert!(m.functions[0].body.iter().any(|b| b.token.text == "'}'"));
    }
}
