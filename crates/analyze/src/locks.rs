//! The lock-order / race-pattern pass over the serving layer.
//!
//! `dpe-server` has grown real lock surface: per-shard `RwLock<Shard>`s,
//! per-shard cache and plan `Mutex`es, and the scheduler's injector-queue
//! mutexes — plus channels threaded between producer threads and lock
//! holders. No test explores interleavings that deadlock; this pass
//! explores the *acquisition structure* instead:
//!
//! | rule | pattern |
//! |---|---|
//! | `lock-order-cycle` | two lock classes acquired in both orders somewhere in the crate (classic AB/BA deadlock) |
//! | `lock-reentrant` | a lock class acquired while an acquisition of the same class is still held (std locks are not reentrant) |
//! | `lock-across-channel` | a channel `send`/`recv` while any lock is held (blocks the holder on a peer that may need the lock) |
//! | `guard-immediately-dropped` | `let _ = …lock()` — the guard dies instantly, the "critical section" is unguarded |
//! | `guard-escapes-function` | a function returning a `…Guard` type — callers extend the critical section invisibly |
//!
//! Lock identity is the *field path* of the receiver (`self.shards`,
//! `self.caches`, …), with `let` aliases resolved one level deep
//! (`let slot = self.shards.get(i)…; slot.write()` still counts as
//! `self.shards`). Guards bound by `let` are held to the end of their
//! block; guards consumed inline (`x.lock().expect(…).get(…)`) are held
//! to the end of the statement. An approximate call graph propagates
//! acquisition sets, so `f` holding `A` and calling `g` that takes `B`
//! contributes the pair `A → B` even across functions. All of it is an
//! over-approximation; waivers and the baseline keep it actionable.

use crate::config::Config;
use crate::engine::WaiverIndex;
use crate::findings::{finding_key, Finding};
use crate::lexer::TokenKind;
use crate::model::{FileModel, FunctionModel};
use std::collections::{BTreeMap, BTreeSet};

/// One observed "B acquired while A held" edge.
// The clippy.toml ban on `PartialOrd::partial_cmp` targets NaN-prone
// float sorts; this derive is field-wise over strings and integers.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct PairSite {
    from: String,
    to: String,
    line: u32,
}

/// Per-function lock facts extracted from the token walk.
#[derive(Debug, Default)]
struct FnLocks {
    /// Lock classes acquired anywhere in the body.
    direct: BTreeSet<String>,
    /// Ordered acquisition pairs observed inside the body.
    pairs: Vec<PairSite>,
    /// Calls made while at least one lock was held: (callee, held, line).
    calls_with_held: Vec<(String, Vec<String>, u32)>,
    /// Local findings (reentrant / channel / dropped-guard), pre-waiver.
    local: Vec<(String, String, u32, String)>, // (rule, detail, line, message)
}

/// Runs the pass over the scanned workspace.
pub fn run(files: &[FileModel], config: &Config, waivers: &mut WaiverIndex) -> Vec<Finding> {
    let in_scope: Vec<&FunctionModel> = files
        .iter()
        .filter(|f| config.lock_crates.iter().any(|c| c == &f.crate_name))
        .flat_map(|f| f.functions.iter())
        .filter(|f| !f.in_test)
        .collect();

    let mut facts: Vec<FnLocks> = in_scope.iter().map(|f| walk_function(f)).collect();

    // Approximate call graph within the scoped crates, for acquisition
    // propagation: bare names and `Type::method` paths both resolve.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_typed: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in in_scope.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
        if let Some(t) = &f.type_qualified {
            by_typed.entry(t.as_str()).or_default().push(i);
        }
    }
    let resolve = |call: &str| -> Vec<usize> {
        if call.contains("::") {
            by_typed.get(call).cloned().unwrap_or_default()
        } else {
            by_name.get(call).cloned().unwrap_or_default()
        }
    };

    // Transitive acquisition sets, to a fixpoint (the graph is tiny).
    let mut trans: Vec<BTreeSet<String>> = facts.iter().map(|f| f.direct.clone()).collect();
    loop {
        let mut changed = false;
        for (i, f) in in_scope.iter().enumerate() {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for call in &f.calls {
                for j in resolve(&call.name) {
                    if j != i {
                        add.extend(trans[j].iter().cloned());
                    }
                }
            }
            for l in add {
                changed |= trans[i].insert(l);
            }
        }
        if !changed {
            break;
        }
    }

    // Inter-procedural pairs: f holds A, calls g, g (transitively) takes B.
    for (i, f) in in_scope.iter().enumerate() {
        let calls = facts[i].calls_with_held.clone();
        for (callee, held, line) in calls {
            for j in resolve(&callee) {
                if j == i {
                    continue;
                }
                for b in trans[j].clone() {
                    for a in &held {
                        if *a == b {
                            facts[i].local.push((
                                "lock-reentrant".into(),
                                format!("{a}->{callee}"),
                                line,
                                format!(
                                    "`{}` calls `{callee}` while holding `{a}`, which (transitively) re-acquires `{a}`",
                                    f.name
                                ),
                            ));
                        } else {
                            facts[i].pairs.push(PairSite {
                                from: a.clone(),
                                to: b.clone(),
                                line,
                            });
                        }
                    }
                }
            }
        }
    }

    // Global pair graph → strongly connected components → cycle findings.
    let mut edges: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for f in &facts {
        for p in &f.pairs {
            edges
                .entry(p.from.as_str())
                .or_default()
                .insert(p.to.as_str());
        }
    }
    let cyclic = cyclic_nodes(&edges);

    let mut findings = Vec::new();
    for (i, f) in in_scope.iter().enumerate() {
        let mut occurrence: BTreeMap<(String, String), usize> = BTreeMap::new();
        let push = |rule: &str,
                    detail: &str,
                    line: u32,
                    message: String,
                    occurrence: &mut BTreeMap<(String, String), usize>,
                    findings: &mut Vec<Finding>,
                    waivers: &mut WaiverIndex| {
            let idx = occurrence
                .entry((rule.to_string(), detail.to_string()))
                .or_insert(0);
            let key = finding_key(rule, &f.file, &f.qualified, detail, *idx);
            *idx += 1;
            if waivers.is_waived(&f.file, rule, line) {
                return;
            }
            findings.push(Finding {
                key,
                rule: rule.to_string(),
                file: f.file.clone(),
                line,
                function: f.qualified.clone(),
                message,
            });
        };

        // Cycle findings: one per (function, ordered pair) participating
        // in a cyclic component.
        let mut seen_pairs: BTreeSet<(String, String)> = BTreeSet::new();
        for p in &facts[i].pairs {
            if !seen_pairs.insert((p.from.clone(), p.to.clone())) {
                continue;
            }
            if cyclic.contains(&(p.from.as_str(), p.to.as_str())) {
                push(
                    "lock-order-cycle",
                    &format!("{}->{}", p.from, p.to),
                    p.line,
                    format!(
                        "`{}` acquires `{}` while holding `{}`, but the reverse order also exists in this crate — AB/BA deadlock",
                        f.name, p.to, p.from
                    ),
                    &mut occurrence,
                    &mut findings,
                    waivers,
                );
            }
        }
        for (rule, detail, line, message) in facts[i].local.clone() {
            push(
                &rule,
                &detail,
                line,
                message,
                &mut occurrence,
                &mut findings,
                waivers,
            );
        }
        // Guard-returning signature.
        let mut after_arrow = false;
        for t in &f.signature {
            if t.text == "->" {
                after_arrow = true;
            } else if after_arrow && t.kind == TokenKind::Ident && t.text.ends_with("Guard") {
                push(
                    "guard-escapes-function",
                    &t.text.clone(),
                    f.start_line,
                    format!(
                        "`{}` returns a `{}`: callers hold the lock for an invisible extent",
                        f.name, t.text
                    ),
                    &mut occurrence,
                    &mut findings,
                    waivers,
                );
                break;
            }
        }
    }
    findings
}

/// Ordered pairs (a, b) that lie inside a cycle of the pair graph: edge
/// a→b is cyclic iff b can reach a.
fn cyclic_nodes<'a>(edges: &BTreeMap<&'a str, BTreeSet<&'a str>>) -> BTreeSet<(&'a str, &'a str)> {
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = edges.get(n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    let mut cyclic = BTreeSet::new();
    for (a, tos) in edges {
        for b in tos {
            if reaches(b, a) {
                cyclic.insert((*a, *b));
            }
        }
    }
    cyclic
}

/// A held lock acquisition.
#[derive(Debug, Clone)]
struct Held {
    name: String,
    /// `let` binding holding the guard, when there is one.
    binding: Option<String>,
    depth: u32,
    /// Inline-consumed guard: released at the end of the statement.
    temp: bool,
}

const ACQUIRERS: &[&str] = &["lock", "read", "write"];
const CHANNEL_OPS: &[&str] = &["send", "recv", "recv_timeout", "try_recv"];

fn walk_function(f: &FunctionModel) -> FnLocks {
    let mut out = FnLocks::default();
    let body = &f.body;
    // One-level `let` aliases: `let slot = …self.shards…;` → slot ↦ self.shards.
    let aliases = collect_aliases(f);
    let mut held: Vec<Held> = Vec::new();
    let mut pending_let: Option<String> = None;

    let mut i = 0usize;
    while i < body.len() {
        let t = &body[i].token;
        let depth = body[i].depth;
        match (t.kind, t.text.as_str()) {
            (TokenKind::Ident, "let") => {
                let mut j = i + 1;
                while body.get(j).is_some_and(|b| b.token.text == "mut") {
                    j += 1;
                }
                pending_let = body.get(j).map(|b| b.token.text.clone());
            }
            (TokenKind::Punct, ";") => {
                pending_let = None;
                held.retain(|h| !(h.temp && h.depth >= depth));
            }
            (TokenKind::Punct, "}") => {
                held.retain(|h| h.depth <= depth);
            }
            (TokenKind::Ident, "drop") if body.get(i + 1).is_some_and(|b| b.token.text == "(") => {
                if let Some(b) = body.get(i + 2) {
                    let name = b.token.text.clone();
                    held.retain(|h| h.binding.as_deref() != Some(name.as_str()));
                }
            }
            (TokenKind::Punct, ".") => {
                let method = body.get(i + 1).map(|b| b.token.text.as_str()).unwrap_or("");
                let open = body.get(i + 2).map(|b| b.token.text.as_str()) == Some("(");
                let nullary = open && body.get(i + 3).map(|b| b.token.text.as_str()) == Some(")");
                if ACQUIRERS.contains(&method) && nullary {
                    let line = body[i + 1].token.line;
                    let receiver = receiver_of(body, i, &aliases);
                    // Pairs against everything currently held.
                    for h in &held {
                        if h.name == receiver {
                            out.local.push((
                                "lock-reentrant".into(),
                                receiver.clone(),
                                line,
                                format!(
                                    "`{}` re-acquires `{receiver}` while an earlier acquisition is still held (std locks are not reentrant)",
                                    f.name
                                ),
                            ));
                        } else {
                            out.pairs.push(PairSite {
                                from: h.name.clone(),
                                to: receiver.clone(),
                                line,
                            });
                        }
                    }
                    out.direct.insert(receiver.clone());
                    // Guard disposition: inline-consumed chains are temps;
                    // `let _ =` kills the guard instantly; a named `let`
                    // holds it to the end of the block.
                    let consumed = chain_continues(body, i + 3);
                    match (&pending_let, consumed) {
                        (_, true) => held.push(Held { name: receiver, binding: None, depth, temp: true }),
                        (Some(b), false) if b == "_" => out.local.push((
                            "guard-immediately-dropped".into(),
                            receiver.clone(),
                            line,
                            format!(
                                "`let _ = …{method}()` in `{}`: the `{receiver}` guard is dropped immediately, nothing is protected",
                                f.name
                            ),
                        )),
                        (Some(b), false) => held.push(Held {
                            name: receiver,
                            binding: Some(b.clone()),
                            depth,
                            temp: false,
                        }),
                        (None, false) => held.push(Held { name: receiver, binding: None, depth, temp: true }),
                    }
                    i += 2; // skip past `method (`
                } else if CHANNEL_OPS.contains(&method) && open && !held.is_empty() {
                    let names: Vec<String> = held.iter().map(|h| h.name.clone()).collect();
                    out.local.push((
                        "lock-across-channel".into(),
                        method.to_string(),
                        body[i + 1].token.line,
                        format!(
                            "`{}` performs channel `{method}` while holding {:?}: the holder can block on a peer that needs the lock",
                            f.name, names
                        ),
                    ));
                } else if open && !held.is_empty() && !is_benign_method(method) {
                    out.calls_with_held.push((
                        method.to_string(),
                        held.iter().map(|h| h.name.clone()).collect(),
                        body[i + 1].token.line,
                    ));
                }
            }
            (TokenKind::Ident, name)
                if body.get(i + 1).is_some_and(|b| b.token.text == "(")
                    && !held.is_empty()
                    && i.checked_sub(1)
                        .map(|j| body[j].token.text != "." && body[j].token.text != "::")
                        .unwrap_or(true)
                    && !KEYWORD_CALLS.contains(&name) =>
            {
                out.calls_with_held.push((
                    name.to_string(),
                    held.iter().map(|h| h.name.clone()).collect(),
                    t.line,
                ));
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// After a nullary acquisition `…lock()`, does the method chain continue
/// past `expect` / `unwrap` adapters into a real consumer? If so, the
/// guard is a temporary bound to the statement, not to a `let` binding.
fn chain_continues(body: &[crate::model::BodyToken], mut i: usize) -> bool {
    // i points at the `)` of the acquisition; step past it.
    i += 1;
    loop {
        if body.get(i).map(|b| b.token.text.as_str()) != Some(".") {
            return false;
        }
        let method = body.get(i + 1).map(|b| b.token.text.as_str()).unwrap_or("");
        if method != "expect" && method != "unwrap" {
            return true; // a real consumer: the guard never reaches the let
        }
        // Skip the adapter's argument list.
        if body.get(i + 2).map(|b| b.token.text.as_str()) != Some("(") {
            return false;
        }
        let mut depth = 0usize;
        let mut j = i + 2;
        while let Some(b) = body.get(j) {
            match b.token.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        i = j + 1;
    }
}

/// Walks backwards from the `.` of an acquisition to name the receiver:
/// the dotted field path with index groups stripped and one-level `let`
/// aliases resolved.
fn receiver_of(
    body: &[crate::model::BodyToken],
    dot: usize,
    aliases: &BTreeMap<String, String>,
) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot as i64 - 1;
    while j >= 0 {
        let t = &body[j as usize].token;
        match t.text.as_str() {
            "]" => {
                // Skip the index group.
                let mut depth = 0i64;
                while j >= 0 {
                    match body[j as usize].token.text.as_str() {
                        "]" => depth += 1,
                        "[" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j -= 1;
                }
                j -= 1;
            }
            ")" => {
                // A call in the chain (`.get(i)`): skip its arguments and
                // the method name, keep walking the receiver.
                let mut depth = 0i64;
                while j >= 0 {
                    match body[j as usize].token.text.as_str() {
                        ")" => depth += 1,
                        "(" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j -= 1;
                }
                j -= 1; // the method name
                j -= 1;
            }
            "." | "::" => j -= 1,
            _ if body[j as usize].token.kind == TokenKind::Ident => {
                parts.push(t.text.clone());
                let prev = j - 1;
                if prev >= 0 && matches!(body[prev as usize].token.text.as_str(), "." | "::") {
                    j = prev;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    parts.reverse();
    if parts.is_empty() {
        return "<expr>".to_string();
    }
    // Resolve a leading alias one level deep.
    if let Some(target) = aliases.get(&parts[0]) {
        if parts.len() == 1 {
            return target.clone();
        }
        return format!("{target}.{}", parts[1..].join("."));
    }
    parts.join(".")
}

/// `let name = … self.field …;` and `for name in … self.field …` aliases.
fn collect_aliases(f: &FunctionModel) -> BTreeMap<String, String> {
    let body = &f.body;
    let mut aliases = BTreeMap::new();
    let mut i = 0usize;
    while i < body.len() {
        let kw = &body[i].token;
        if kw.kind == TokenKind::Ident && (kw.text == "let" || kw.text == "for") {
            let mut j = i + 1;
            while body.get(j).is_some_and(|b| b.token.text == "mut") {
                j += 1;
            }
            let Some(binding) = body.get(j).map(|b| b.token.text.clone()) else {
                break;
            };
            // Find the first `self.field` in the initializer, up to `;`
            // (for `let`) or `{` (for `for`).
            let stop = if kw.text == "let" { ";" } else { "{" };
            let mut k = j + 1;
            while let Some(b) = body.get(k) {
                if b.token.text == stop {
                    break;
                }
                if b.token.text == "self"
                    && body.get(k + 1).is_some_and(|n| n.token.text == ".")
                    && body
                        .get(k + 2)
                        .is_some_and(|n| n.token.kind == TokenKind::Ident)
                {
                    aliases
                        .entry(binding.clone())
                        .or_insert_with(|| format!("self.{}", body[k + 2].token.text));
                    break;
                }
                k += 1;
            }
            i = j;
        }
        i += 1;
    }
    aliases
}

/// Methods that never take locks and clutter the call-with-held list.
fn is_benign_method(name: &str) -> bool {
    matches!(
        name,
        "expect"
            | "unwrap"
            | "unwrap_or"
            | "unwrap_or_default"
            | "unwrap_or_else"
            | "clone"
            | "len"
            | "is_empty"
            | "iter"
            | "into_iter"
            | "push"
            | "push_back"
            | "pop"
            | "pop_front"
            | "insert"
            | "get"
            | "contains"
            | "fetch_add"
            | "fetch_sub"
            | "load"
            | "store"
            | "to_string"
            | "as_str"
            | "map"
            | "and_then"
            | "ok_or"
            | "collect"
            | "extend"
    )
}

const KEYWORD_CALLS: &[&str] = &[
    "if",
    "while",
    "match",
    "for",
    "loop",
    "return",
    "Some",
    "Ok",
    "Err",
    "None",
    "Vec",
    "vec",
    "assert",
    "debug_assert",
    "format",
    "println",
    "panic",
    "write",
    "writeln",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::scan_file;

    fn config() -> Config {
        Config {
            forbid_unsafe_crates: vec![],
            secret_crates: vec![],
            secret_roots: vec![],
            secret_ignore_calls: vec![],
            lock_crates: vec!["c".into()],
            no_unwrap_crates: vec![],
        }
    }

    fn run_on(src: &str) -> Vec<Finding> {
        let files = vec![scan_file("c", "src/lib.rs", src)];
        let mut waivers = WaiverIndex::new(&files);
        run(&files, &config(), &mut waivers)
    }

    #[test]
    fn ab_ba_inversion_is_a_cycle() {
        let src = "
impl S {
    fn f(&self) { let a = self.alpha.lock().unwrap(); let b = self.beta.lock().unwrap(); }
    fn g(&self) { let b = self.beta.lock().unwrap(); let a = self.alpha.lock().unwrap(); }
}";
        let f = run_on(src);
        let cycles: Vec<&Finding> = f.iter().filter(|f| f.rule == "lock-order-cycle").collect();
        assert_eq!(
            cycles.len(),
            2,
            "both ends of the inversion are reported: {f:?}"
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "
impl S {
    fn f(&self) { let a = self.alpha.lock().unwrap(); let b = self.beta.lock().unwrap(); }
    fn g(&self) { let a = self.alpha.lock().unwrap(); let b = self.beta.lock().unwrap(); }
}";
        assert!(run_on(src).iter().all(|f| f.rule != "lock-order-cycle"));
    }

    #[test]
    fn indexed_receivers_and_rwlock_methods_classify_by_field() {
        let src = "
impl S {
    fn f(&self, i: usize) { let g = self.shards[i].read().unwrap(); let c = self.caches[i].lock().unwrap(); }
    fn g(&self, i: usize) { let c = self.caches[i].lock().unwrap(); let g = self.shards[i].write().unwrap(); }
}";
        let f = run_on(src);
        assert!(
            f.iter().any(|f| f.rule == "lock-order-cycle" && f.key.contains("self.shards->self.caches")),
            "{f:?}"
        );
    }

    #[test]
    fn inline_consumed_guard_is_released_at_statement_end() {
        // The lock in the first statement is consumed inline, so the
        // second acquisition does not overlap it: no pair, no cycle.
        let src = "
impl S {
    fn f(&self) { self.alpha.lock().expect(\"p\").insert(1); self.beta.lock().expect(\"p\").insert(2); }
    fn g(&self) { self.beta.lock().expect(\"p\").insert(2); self.alpha.lock().expect(\"p\").insert(1); }
}";
        assert!(run_on(src).iter().all(|f| f.rule != "lock-order-cycle"));
    }

    #[test]
    fn reentrant_acquisition_is_flagged() {
        let src = "impl S { fn f(&self) { let a = self.m.lock().unwrap(); let b = self.m.lock().unwrap(); } }";
        let f = run_on(src);
        assert!(f.iter().any(|f| f.rule == "lock-reentrant"), "{f:?}");
    }

    #[test]
    fn channel_send_under_lock_is_flagged() {
        let src = "impl S { fn f(&self) { let g = self.m.lock().unwrap(); self.tx.send(1); } }";
        let f = run_on(src);
        assert!(f.iter().any(|f| f.rule == "lock-across-channel"), "{f:?}");
    }

    #[test]
    fn channel_send_without_lock_is_clean() {
        let src = "impl S { fn f(&self) { self.tx.send(1); let g = self.m.lock().unwrap(); } }";
        assert!(run_on(src).iter().all(|f| f.rule != "lock-across-channel"));
    }

    #[test]
    fn let_underscore_guard_is_flagged() {
        let src = "impl S { fn f(&self) { let _ = self.m.lock().unwrap(); self.x += 1; } }";
        let f = run_on(src);
        assert!(
            f.iter().any(|f| f.rule == "guard-immediately-dropped"),
            "{f:?}"
        );
    }

    #[test]
    fn guard_returning_signature_is_flagged() {
        let src = "impl S { fn get(&self) -> RwLockReadGuard<'_, T> { self.m.read().unwrap() } }";
        let f = run_on(src);
        assert!(
            f.iter().any(|f| f.rule == "guard-escapes-function"),
            "{f:?}"
        );
    }

    #[test]
    fn interprocedural_pairs_via_call_graph() {
        // f holds alpha and calls g, which takes beta; h takes them in the
        // reverse order directly → cycle across function boundaries.
        let src = "
impl S {
    fn f(&self) { let a = self.alpha.lock().unwrap(); self.g(); }
    fn g(&self) { let b = self.beta.lock().unwrap(); }
    fn h(&self) { let b = self.beta.lock().unwrap(); let a = self.alpha.lock().unwrap(); }
}";
        let f = run_on(src);
        assert!(f.iter().any(|f| f.rule == "lock-order-cycle"), "{f:?}");
    }

    #[test]
    fn alias_resolution_tracks_field_paths() {
        let src = "
impl S {
    fn f(&self, i: usize) -> Result<(), E> {
        let slot = self.shards.get(i).ok_or(E)?;
        let g = slot.write().unwrap();
        let c = self.caches.lock().unwrap();
        Ok(())
    }
    fn g(&self) { let c = self.caches.lock().unwrap(); let s = self.shards.write().unwrap(); }
}";
        let f = run_on(src);
        assert!(
            f.iter().any(|f| f.rule == "lock-order-cycle" && f.key.contains("self.shards->self.caches")),
            "aliased receiver must resolve to self.shards: {f:?}"
        );
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = "
impl S {
    fn f(&self) { let a = self.alpha.lock().unwrap(); drop(a); let b = self.beta.lock().unwrap(); }
    fn g(&self) { let b = self.beta.lock().unwrap(); drop(b); let a = self.alpha.lock().unwrap(); }
}";
        assert!(run_on(src).iter().all(|f| f.rule != "lock-order-cycle"));
    }
}
