//! The driver: waiver bookkeeping, the small per-crate hygiene passes,
//! workspace source discovery, and the top-level [`analyze`] entry point
//! that fans out to the secret-flow and lock-order passes and returns
//! one deterministic, sorted findings list.

use crate::config::Config;
use crate::findings::{finding_key, Finding};
use crate::model::{scan_file, FileModel, Waiver};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Tracks every inline waiver in the workspace, answers "is this finding
/// waived?", and remembers which waivers were never consulted so they can
/// be reported as dead weight.
///
/// A waiver covers a finding when it sits **on the flagged line** (a
/// trailing comment) or **directly above it**, where "directly" allows
/// intervening lines only if they carry no tokens (blank lines and other
/// comment-only lines — so waiver stacks work).
pub struct WaiverIndex {
    files: BTreeMap<String, FileWaivers>,
}

struct FileWaivers {
    waivers: Vec<WaiverState>,
    waiver_lines: BTreeSet<u32>,
    token_lines: BTreeSet<u32>,
}

struct WaiverState {
    waiver: Waiver,
    used: bool,
}

impl WaiverIndex {
    pub fn new(files: &[FileModel]) -> WaiverIndex {
        let mut map = BTreeMap::new();
        for f in files {
            map.insert(
                f.path.clone(),
                FileWaivers {
                    waivers: f
                        .waivers
                        .iter()
                        .map(|w| WaiverState {
                            waiver: w.clone(),
                            used: false,
                        })
                        .collect(),
                    waiver_lines: f.waivers.iter().map(|w| w.line).collect(),
                    token_lines: f.token_lines.clone(),
                },
            );
        }
        WaiverIndex { files: map }
    }

    /// True when a matching waiver covers `line`; marks that waiver used.
    pub fn is_waived(&mut self, file: &str, rule: &str, line: u32) -> bool {
        let Some(fw) = self.files.get_mut(file) else {
            return false;
        };
        for w in fw.waivers.iter_mut() {
            if w.waiver.rule != rule {
                continue;
            }
            let covers = w.waiver.line == line
                || (w.waiver.line < line
                    && !fw
                        .token_lines
                        .range(w.waiver.line + 1..line)
                        .any(|l| !fw.waiver_lines.contains(l)));
            if covers {
                w.used = true;
                return true;
            }
        }
        false
    }

    /// Waivers that never suppressed anything: (file, waiver).
    pub fn unused(&self) -> Vec<(String, Waiver)> {
        let mut out = Vec::new();
        for (path, fw) in &self.files {
            for w in &fw.waivers {
                if !w.used {
                    out.push((path.clone(), w.waiver.clone()));
                }
            }
        }
        out
    }
}

/// Runs every pass over pre-scanned files and returns findings sorted by
/// (file, line, rule, key). This is the pure core: tests inject synthetic
/// [`FileModel`]s here, the CLI feeds it the real workspace.
pub fn analyze(files: &[FileModel], config: &Config) -> Vec<Finding> {
    let mut waivers = WaiverIndex::new(files);
    let mut findings = Vec::new();

    findings.extend(crate::secret::run(files, config, &mut waivers));
    findings.extend(crate::locks::run(files, config, &mut waivers));
    findings.extend(forbid_unsafe_pass(files, config, &mut waivers));
    findings.extend(no_unwrap_pass(files, config, &mut waivers));

    // Waiver hygiene, after every rule pass has had its chance to consume
    // waivers: malformed waivers are always findings; so are unused ones
    // (a waiver that suppresses nothing is a stale claim about the code).
    for f in files {
        for (i, bad) in f.bad_waivers.iter().enumerate() {
            findings.push(Finding {
                key: finding_key("malformed-waiver", &f.path, "-", "malformed", i),
                rule: "malformed-waiver".into(),
                file: f.path.clone(),
                line: bad.line,
                function: "-".into(),
                message: bad.message.clone(),
            });
        }
    }
    let mut unused_idx: BTreeMap<(String, String), usize> = BTreeMap::new();
    for (path, w) in waivers.unused() {
        let idx = unused_idx
            .entry((path.clone(), w.rule.clone()))
            .or_insert(0);
        findings.push(Finding {
            key: finding_key("unused-waiver", &path, "-", &w.rule, *idx),
            rule: "unused-waiver".into(),
            file: path,
            line: w.line,
            function: "-".into(),
            message: format!(
                "waiver for `{}` suppresses nothing — remove it or fix the rule name",
                w.rule
            ),
        });
        *idx += 1;
    }

    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.key).cmp(&(&b.file, b.line, &b.rule, &b.key))
    });
    findings
}

/// Every configured crate root must carry `#![forbid(unsafe_code)]`.
fn forbid_unsafe_pass(
    files: &[FileModel],
    config: &Config,
    waivers: &mut WaiverIndex,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for crate_name in &config.forbid_unsafe_crates {
        let root = files
            .iter()
            .find(|f| &f.crate_name == crate_name && is_crate_root(&f.path));
        let (finding_file, ok, line) = match root {
            Some(f) => (f.path.clone(), f.has_forbid_unsafe, 1),
            None => (format!("crates/{crate_name}/src/lib.rs"), false, 1),
        };
        if ok || waivers.is_waived(&finding_file, "missing-forbid-unsafe", line) {
            continue;
        }
        let message = match root {
            Some(_) => format!(
                "crate `{crate_name}` root lacks `#![forbid(unsafe_code)]` — required by analyze.toml [forbid_unsafe]"
            ),
            None => format!(
                "analyze.toml lists crate `{crate_name}` under [forbid_unsafe] but no crate root was found"
            ),
        };
        findings.push(Finding {
            key: finding_key("missing-forbid-unsafe", &finding_file, "-", crate_name, 0),
            rule: "missing-forbid-unsafe".into(),
            file: finding_file,
            line,
            function: "-".into(),
            message,
        });
    }
    findings
}

fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs" || path.ends_with("/src/lib.rs")
}

/// Bare `.unwrap()` is banned in non-test code of the configured crates;
/// `.expect("actionable message")` or a typed error is required instead.
fn no_unwrap_pass(files: &[FileModel], config: &Config, waivers: &mut WaiverIndex) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !config
            .no_unwrap_crates
            .iter()
            .any(|c| c == &file.crate_name)
        {
            continue;
        }
        for f in file.functions.iter().filter(|f| !f.in_test) {
            let mut idx = 0usize;
            for w in f.body.windows(3) {
                if w[0].token.text == "." && w[1].token.text == "unwrap" && w[2].token.text == "(" {
                    let line = w[1].token.line;
                    let key = finding_key("bare-unwrap", &f.file, &f.qualified, "unwrap", idx);
                    idx += 1;
                    if waivers.is_waived(&f.file, "bare-unwrap", line) {
                        continue;
                    }
                    findings.push(Finding {
                        key,
                        rule: "bare-unwrap".into(),
                        file: f.file.clone(),
                        line,
                        function: f.qualified.clone(),
                        message: format!(
                            "bare `.unwrap()` in `{}`: use `.expect(\"actionable message\")` or a typed error",
                            f.name
                        ),
                    });
                }
            }
        }
    }
    findings
}

/// One workspace source file: crate name + repo-relative path + contents.
pub struct SourceFile {
    pub crate_name: String,
    pub rel_path: String,
    pub abs_path: PathBuf,
}

/// Finds every first-party Rust source in the workspace: the facade crate
/// at `src/`, and each `crates/<name>/src/` tree. `vendor/` shims,
/// `target/`, and crate-external `tests/`/`benches/` directories are out
/// of scope. Deterministic (sorted) order.
pub fn discover_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut out = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        collect_rs(&facade, "dpe", root, &mut out)?;
    }
    let crates = root.join("crates");
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates)
        .map_err(|e| format!("{}: {e}", crates.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| format!("unreadable crate dir under {}", crates.display()))?
            .to_string();
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &name, root, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

fn collect_rs(
    dir: &Path,
    crate_name: &str,
    root: &Path,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, crate_name, root, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| format!("{} escapes the workspace root", path.display()))?
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                crate_name: crate_name.to_string(),
                rel_path: rel,
                abs_path: path,
            });
        }
    }
    Ok(())
}

/// Reads and scans the whole workspace, then runs [`analyze`].
pub fn analyze_workspace(root: &Path, config: &Config) -> Result<Vec<Finding>, String> {
    let sources = discover_sources(root)?;
    let mut files = Vec::with_capacity(sources.len());
    for s in &sources {
        let text = std::fs::read_to_string(&s.abs_path)
            .map_err(|e| format!("{}: {e}", s.abs_path.display()))?;
        files.push(scan_file(&s.crate_name, &s.rel_path, &text));
    }
    Ok(analyze(&files, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> Config {
        Config {
            forbid_unsafe_crates: vec!["c".into()],
            secret_crates: vec!["c".into()],
            secret_roots: vec!["decrypt".into()],
            secret_ignore_calls: vec![],
            lock_crates: vec!["c".into()],
            no_unwrap_crates: vec!["c".into()],
        }
    }

    fn scan(src: &str) -> Vec<FileModel> {
        vec![scan_file("c", "src/lib.rs", src)]
    }

    #[test]
    fn missing_forbid_unsafe_is_flagged_and_presence_clears_it() {
        let with = analyze(
            &scan("#![forbid(unsafe_code)]\nfn decrypt() {}\n"),
            &config(),
        );
        assert!(
            with.iter().all(|f| f.rule != "missing-forbid-unsafe"),
            "{with:?}"
        );
        let without = analyze(&scan("fn decrypt() {}\n"), &config());
        assert!(without.iter().any(|f| f.rule == "missing-forbid-unsafe"));
    }

    #[test]
    fn configured_crate_without_sources_is_flagged() {
        let f = analyze(&[], &config());
        assert!(f
            .iter()
            .any(|f| f.rule == "missing-forbid-unsafe" && f.message.contains("no crate root")));
    }

    #[test]
    fn bare_unwrap_flagged_outside_tests_only() {
        let src = "#![forbid(unsafe_code)]\nfn f(x: Option<u8>) { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn g(x: Option<u8>) { x.unwrap(); } }\nfn decrypt() {}\n";
        let f = analyze(&scan(src), &config());
        let unwraps: Vec<&Finding> = f.iter().filter(|f| f.rule == "bare-unwrap").collect();
        assert_eq!(unwraps.len(), 1, "{f:?}");
        assert!(unwraps[0].function.contains("f"));
    }

    #[test]
    fn waived_unwrap_is_suppressed_and_waiver_counts_as_used() {
        let src = "#![forbid(unsafe_code)]\nfn f(x: Option<u8>) {\n    // dpe-analyze: allow(bare-unwrap, reason = \"infallible: length checked above\")\n    x.unwrap();\n}\nfn decrypt() {}\n";
        let f = analyze(&scan(src), &config());
        assert!(f.iter().all(|f| f.rule != "bare-unwrap"), "{f:?}");
        assert!(f.iter().all(|f| f.rule != "unused-waiver"), "{f:?}");
    }

    #[test]
    fn unused_and_malformed_waivers_are_findings() {
        let src = "#![forbid(unsafe_code)]\n// dpe-analyze: allow(secret-branch, reason = \"nothing here\")\nfn quiet() {}\n// dpe-analyze: allow(secret-branch)\nfn also_quiet() {}\nfn decrypt() {}\n";
        let f = analyze(&scan(src), &config());
        assert!(f.iter().any(|f| f.rule == "unused-waiver"), "{f:?}");
        assert!(f.iter().any(|f| f.rule == "malformed-waiver"), "{f:?}");
    }

    #[test]
    fn output_is_sorted_and_deterministic() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\nfn decrypt(k: &K) { if k.bit(0) {} }\n";
        let a = analyze(&scan(src), &config());
        let b = analyze(&scan(src), &config());
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_by(|x, y| {
            (&x.file, x.line, &x.rule, &x.key).cmp(&(&y.file, y.line, &y.rule, &y.key))
        });
        assert_eq!(a, sorted);
    }

    #[test]
    fn waiver_must_sit_adjacent_to_the_finding() {
        // A waiver separated from the flagged line by a token-bearing line
        // does not apply.
        let src = "fn decrypt(k: &K) {\n    // dpe-analyze: allow(secret-branch, reason = \"too far away\")\n    let x = 1;\n    if k.bit(0) {}\n}\n";
        let f = analyze(&scan(src), &config());
        assert!(f.iter().any(|f| f.rule == "secret-branch"), "{f:?}");
        assert!(f.iter().any(|f| f.rule == "unused-waiver"), "{f:?}");
    }
}
