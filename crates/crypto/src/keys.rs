//! Key material: symmetric keys and the master key that fans out into
//! per-slot scheme keys via labelled derivation.

use crate::hmac::hmac_sha256;
use rand::RngCore;
use std::fmt;

/// A 256-bit symmetric key.
///
/// Debug/Display never print key bytes.
#[derive(Clone, PartialEq, Eq)]
pub struct SymmetricKey(pub(crate) [u8; 32]);

impl SymmetricKey {
    /// Samples a fresh random key.
    pub fn random<R: RngCore>(rng: &mut R) -> Self {
        let mut bytes = [0u8; 32];
        rng.fill_bytes(&mut bytes);
        SymmetricKey(bytes)
    }

    /// Wraps explicit key bytes (e.g. from a KDF).
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        SymmetricKey(bytes)
    }

    /// Raw key bytes. Internal consumers only.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl fmt::Debug for SymmetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SymmetricKey(<redacted>)")
    }
}

/// The data owner's master key.
///
/// Every encryption slot in the high-level scheme
/// `(EncRel, EncAttr, {EncA.Const})` gets its own subkey derived with a
/// distinct label, so compromising one slot's key reveals nothing about the
/// others. Derivation is `HMAC-SHA256(master, label)`.
#[derive(Clone)]
pub struct MasterKey(SymmetricKey);

impl MasterKey {
    /// Samples a fresh random master key.
    pub fn random<R: RngCore>(rng: &mut R) -> Self {
        MasterKey(SymmetricKey::random(rng))
    }

    /// Wraps explicit master key bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        MasterKey(SymmetricKey::from_bytes(bytes))
    }

    /// Derives the subkey for `label`. Equal labels yield equal keys.
    pub fn derive(&self, label: &str) -> SymmetricKey {
        SymmetricKey(hmac_sha256(self.0.as_bytes(), label.as_bytes()))
    }

    /// Derives a subkey from a multi-part label (parts are length-prefixed so
    /// `("a", "bc")` and `("ab", "c")` cannot collide).
    pub fn derive_parts(&self, parts: &[&str]) -> SymmetricKey {
        let mut material = Vec::new();
        for part in parts {
            material.extend_from_slice(&(part.len() as u32).to_be_bytes());
            material.extend_from_slice(part.as_bytes());
        }
        SymmetricKey(hmac_sha256(self.0.as_bytes(), &material))
    }
}

impl fmt::Debug for MasterKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MasterKey(<redacted>)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn derive_is_deterministic_and_label_separated() {
        let mk = MasterKey::from_bytes([1; 32]);
        assert_eq!(mk.derive("rel"), mk.derive("rel"));
        assert_ne!(mk.derive("rel"), mk.derive("attr"));
    }

    #[test]
    fn different_masters_different_subkeys() {
        let a = MasterKey::from_bytes([1; 32]);
        let b = MasterKey::from_bytes([2; 32]);
        assert_ne!(a.derive("x"), b.derive("x"));
    }

    #[test]
    fn derive_parts_is_injective_on_boundaries() {
        let mk = MasterKey::from_bytes([3; 32]);
        assert_ne!(mk.derive_parts(&["a", "bc"]), mk.derive_parts(&["ab", "c"]));
        assert_eq!(mk.derive_parts(&["a", "bc"]), mk.derive_parts(&["a", "bc"]));
    }

    #[test]
    fn random_keys_differ() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_ne!(
            SymmetricKey::random(&mut rng),
            SymmetricKey::random(&mut rng)
        );
    }

    #[test]
    fn debug_redacts() {
        let mk = MasterKey::from_bytes([9; 32]);
        assert!(!format!("{mk:?}").contains('9'));
        assert!(format!("{:?}", mk.derive("x")).contains("redacted"));
    }
}
