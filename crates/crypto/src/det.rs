//! **DET** — deterministic encryption via a synthetic IV (SIV) construction.
//!
//! `IV = HMAC(K_mac, plaintext)` truncated to 12 bytes, then
//! `body = CTR(K_enc, IV, plaintext)`; the ciphertext is `IV || body`.
//! Equal plaintexts therefore map to byte-identical ciphertexts — exactly the
//! property the token/structural equivalence notions need — and the IV doubles
//! as an integrity tag checked at decryption.

use crate::aes::Aes;
use crate::ctr::ctr_xor;
use crate::error::CryptoError;
use crate::hmac::hmac_sha256;
use crate::keys::SymmetricKey;
use crate::scheme::{Ciphertext, EncryptionClass, SymmetricScheme};
use rand::RngCore;

/// Deterministic SIV-style scheme. Ciphertext framing: `siv (12) || body`.
#[derive(Clone)]
pub struct DetScheme {
    aes: Aes,
    mac_key: SymmetricKey,
    class: EncryptionClass,
}

impl DetScheme {
    /// Builds a DET scheme; encryption and MAC subkeys are derived from
    /// `key` with fixed labels.
    pub fn new(key: &SymmetricKey) -> Self {
        Self::with_class(key, EncryptionClass::Det)
    }

    /// Internal constructor allowing the JOIN usage mode to relabel the
    /// class while reusing the construction.
    pub(crate) fn with_class(key: &SymmetricKey, class: EncryptionClass) -> Self {
        let enc_key = hmac_sha256(key.as_bytes(), b"det-enc");
        let mac_key = hmac_sha256(key.as_bytes(), b"det-mac");
        DetScheme {
            aes: Aes::new_256(&enc_key),
            mac_key: SymmetricKey::from_bytes(mac_key),
            class,
        }
    }

    fn siv(&self, plaintext: &[u8]) -> [u8; 12] {
        let tag = hmac_sha256(self.mac_key.as_bytes(), plaintext);
        tag[..12].try_into().unwrap()
    }
}

impl SymmetricScheme for DetScheme {
    fn encrypt(&self, plaintext: &[u8], _rng: &mut dyn RngCore) -> Ciphertext {
        let siv = self.siv(plaintext);
        let mut out = Vec::with_capacity(12 + plaintext.len());
        out.extend_from_slice(&siv);
        out.extend_from_slice(plaintext);
        ctr_xor(&self.aes, &siv, &mut out[12..]);
        Ciphertext(out)
    }

    fn decrypt(&self, ciphertext: &Ciphertext) -> Result<Vec<u8>, CryptoError> {
        let bytes = ciphertext.as_bytes();
        if bytes.len() < 12 {
            return Err(CryptoError::CiphertextTooShort {
                expected_at_least: 12,
                got: bytes.len(),
            });
        }
        let siv: [u8; 12] = bytes[..12].try_into().unwrap();
        let mut body = bytes[12..].to_vec();
        ctr_xor(&self.aes, &siv, &mut body);
        if self.siv(&body) != siv {
            return Err(CryptoError::IntegrityCheckFailed);
        }
        Ok(body)
    }

    fn class(&self) -> EncryptionClass {
        self.class
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (DetScheme, StdRng) {
        (
            DetScheme::new(&SymmetricKey::from_bytes([8; 32])),
            StdRng::seed_from_u64(2),
        )
    }

    #[test]
    fn deterministic() {
        // The defining DET property: Enc(x) == Enc(x).
        let (scheme, mut rng) = setup();
        let a = scheme.encrypt(b"photoobj", &mut rng);
        let b = scheme.encrypt(b"photoobj", &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn injective_on_distinct_inputs() {
        let (scheme, mut rng) = setup();
        assert_ne!(
            scheme.encrypt(b"ra", &mut rng),
            scheme.encrypt(b"dec", &mut rng)
        );
    }

    #[test]
    fn roundtrip() {
        let (scheme, mut rng) = setup();
        for msg in [
            &b""[..],
            b"x",
            b"a considerably longer attribute value 123.456",
        ] {
            let ct = scheme.encrypt(msg, &mut rng);
            assert_eq!(scheme.decrypt(&ct).unwrap(), msg);
        }
    }

    #[test]
    fn tampered_ciphertext_detected() {
        let (scheme, mut rng) = setup();
        let mut ct = scheme.encrypt(b"specobj", &mut rng);
        let last = ct.0.len() - 1;
        ct.0[last] ^= 1;
        assert_eq!(
            scheme.decrypt(&ct).unwrap_err(),
            CryptoError::IntegrityCheckFailed
        );
    }

    #[test]
    fn wrong_key_detected() {
        let (scheme, mut rng) = setup();
        let other = DetScheme::new(&SymmetricKey::from_bytes([9; 32]));
        let ct = scheme.encrypt(b"neighbors", &mut rng);
        assert_eq!(
            other.decrypt(&ct).unwrap_err(),
            CryptoError::IntegrityCheckFailed
        );
    }

    #[test]
    fn class_is_det() {
        let (scheme, _) = setup();
        assert_eq!(scheme.class(), EncryptionClass::Det);
        assert!(scheme.class().preserves_equality());
    }

    #[test]
    fn no_order_leakage_smoke() {
        // DET must not preserve numeric order: encrypt 0..32 and check the
        // ciphertext ordering is not the identity permutation.
        let (scheme, mut rng) = setup();
        let cts: Vec<_> = (0u32..32)
            .map(|v| scheme.encrypt(&v.to_be_bytes(), &mut rng))
            .collect();
        let mut sorted = cts.clone();
        sorted.sort();
        assert_ne!(cts, sorted, "DET leaking order would collapse to OPE");
    }
}
