//! Slot labels for the high-level SQL encryption scheme.
//!
//! The paper's high-level scheme is the tuple
//! `(EncRel, EncAttr, {EncA.Const : Attribute A})`. Each slot needs an
//! independent key; constants additionally need a key *per attribute* so that
//! frequency correlations across attributes are not created by key reuse.
//! [`SlotLabel`] canonicalizes these label strings so every crate derives the
//! same subkeys from a given [`crate::MasterKey`].

use crate::keys::{MasterKey, SymmetricKey};

/// The three slots of the high-level scheme, plus infrastructure slots used
/// by the CryptDB onion layer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SlotLabel<'a> {
    /// `EncRel` — relation (table) names.
    Relation,
    /// `EncAttr` — attribute (column) names.
    Attribute,
    /// `EncA.Const` — constants belonging to attribute `A` (qualified name).
    Constant(&'a str),
    /// A named join group sharing one key across columns (JOIN usage mode).
    JoinGroup(&'a str),
    /// An onion layer key for a column: (column, onion, layer).
    OnionLayer(&'a str, &'a str, &'a str),
}

impl SlotLabel<'_> {
    /// Derives the slot's subkey from the master key.
    pub fn derive(&self, master: &MasterKey) -> SymmetricKey {
        match self {
            SlotLabel::Relation => master.derive_parts(&["slot", "rel"]),
            SlotLabel::Attribute => master.derive_parts(&["slot", "attr"]),
            SlotLabel::Constant(attr) => master.derive_parts(&["slot", "const", attr]),
            SlotLabel::JoinGroup(group) => master.derive_parts(&["slot", "join", group]),
            SlotLabel::OnionLayer(col, onion, layer) => {
                master.derive_parts(&["onion", col, onion, layer])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn master() -> MasterKey {
        MasterKey::from_bytes([42; 32])
    }

    #[test]
    fn slots_are_independent() {
        let m = master();
        let keys = [
            SlotLabel::Relation.derive(&m),
            SlotLabel::Attribute.derive(&m),
            SlotLabel::Constant("photoobj.ra").derive(&m),
            SlotLabel::Constant("photoobj.dec").derive(&m),
            SlotLabel::JoinGroup("objid").derive(&m),
            SlotLabel::OnionLayer("photoobj.ra", "eq", "det").derive(&m),
        ];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "slots {i} and {j} must not share keys");
            }
        }
    }

    #[test]
    fn per_attribute_constant_keys() {
        let m = master();
        assert_eq!(
            SlotLabel::Constant("t.a").derive(&m),
            SlotLabel::Constant("t.a").derive(&m)
        );
        assert_ne!(
            SlotLabel::Constant("t.a").derive(&m),
            SlotLabel::Constant("t.b").derive(&m)
        );
    }

    #[test]
    fn onion_layers_are_separated() {
        let m = master();
        assert_ne!(
            SlotLabel::OnionLayer("c", "eq", "rnd").derive(&m),
            SlotLabel::OnionLayer("c", "eq", "det").derive(&m)
        );
        assert_ne!(
            SlotLabel::OnionLayer("c", "eq", "det").derive(&m),
            SlotLabel::OnionLayer("c", "ord", "det").derive(&m)
        );
    }
}
