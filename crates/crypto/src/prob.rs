//! **PROB** — probabilistic encryption: randomized AES-256-CTR.
//!
//! Each call draws a fresh 12-byte nonce, so equal plaintexts map to distinct
//! ciphertexts with overwhelming probability. This is the top (most secure)
//! class of Fig. 1: ciphertexts reveal nothing but length.

use crate::aes::Aes;
use crate::ctr::ctr_xor;
use crate::error::CryptoError;
use crate::keys::SymmetricKey;
use crate::scheme::{Ciphertext, EncryptionClass, SymmetricScheme};
use rand::RngCore;

/// Randomized AES-CTR. Ciphertext framing: `nonce (12) || body`.
#[derive(Clone)]
pub struct ProbScheme {
    aes: Aes,
}

impl ProbScheme {
    /// Builds the scheme from a symmetric key.
    pub fn new(key: &SymmetricKey) -> Self {
        ProbScheme {
            aes: Aes::new_256(key.as_bytes()),
        }
    }
}

impl SymmetricScheme for ProbScheme {
    fn encrypt(&self, plaintext: &[u8], rng: &mut dyn RngCore) -> Ciphertext {
        let mut nonce = [0u8; 12];
        rng.fill_bytes(&mut nonce);
        let mut out = Vec::with_capacity(12 + plaintext.len());
        out.extend_from_slice(&nonce);
        out.extend_from_slice(plaintext);
        ctr_xor(&self.aes, &nonce, &mut out[12..]);
        Ciphertext(out)
    }

    fn decrypt(&self, ciphertext: &Ciphertext) -> Result<Vec<u8>, CryptoError> {
        let bytes = ciphertext.as_bytes();
        if bytes.len() < 12 {
            return Err(CryptoError::CiphertextTooShort {
                expected_at_least: 12,
                got: bytes.len(),
            });
        }
        let nonce: [u8; 12] = bytes[..12].try_into().unwrap();
        let mut body = bytes[12..].to_vec();
        ctr_xor(&self.aes, &nonce, &mut body);
        Ok(body)
    }

    fn class(&self) -> EncryptionClass {
        EncryptionClass::Prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ProbScheme, StdRng) {
        (
            ProbScheme::new(&SymmetricKey::from_bytes([5; 32])),
            StdRng::seed_from_u64(11),
        )
    }

    #[test]
    fn roundtrip() {
        let (scheme, mut rng) = setup();
        for msg in [&b""[..], b"a", b"SELECT * FROM photoobj WHERE ra > 1.5"] {
            let ct = scheme.encrypt(msg, &mut rng);
            assert_eq!(scheme.decrypt(&ct).unwrap(), msg);
        }
    }

    #[test]
    fn equal_plaintexts_different_ciphertexts() {
        // The defining PROB property: Enc(x) ≠ Enc(x) (w.h.p.).
        let (scheme, mut rng) = setup();
        let a = scheme.encrypt(b"same", &mut rng);
        let b = scheme.encrypt(b"same", &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn class_is_prob() {
        let (scheme, _) = setup();
        assert_eq!(scheme.class(), EncryptionClass::Prob);
    }

    #[test]
    fn short_ciphertext_rejected() {
        let (scheme, _) = setup();
        let err = scheme.decrypt(&Ciphertext(vec![1, 2, 3])).unwrap_err();
        assert!(matches!(err, CryptoError::CiphertextTooShort { .. }));
    }

    #[test]
    fn wrong_key_garbles() {
        let (scheme, mut rng) = setup();
        let other = ProbScheme::new(&SymmetricKey::from_bytes([6; 32]));
        let ct = scheme.encrypt(b"secret payload", &mut rng);
        // CTR has no integrity; wrong key yields different bytes, not an error.
        assert_ne!(other.decrypt(&ct).unwrap(), b"secret payload");
    }
}
