//! Format-preserving encryption (FPE) — a DET instance that keeps the
//! plaintext's *shape*.
//!
//! L-EncDB (Li et al., the paper's reference \[10\]) builds its lightweight
//! encrypted database on FPE precisely because ciphertexts that stay in the
//! column's format slot into existing schemas unchanged. For KIT-DPE, FPE
//! is interesting as an **alternative DET instance**: it is deterministic,
//! so it ensures token/structural equivalence exactly like the SIV-based
//! [`DetScheme`](crate::det::DetScheme), while producing ciphertexts that
//! remain valid strings over the column's alphabet and of the same length.
//! Swapping it into the `EncA.Const` slot never changes Table I (same
//! class), only the operational convenience — the same argument §IV-D makes
//! for any instance swap inside a class.
//!
//! The construction is an FF1-*style* maximally-unbalanced-free Feistel
//! network over numeral strings (NIST SP 800-38G shape, 10 rounds, PRF =
//! HMAC-SHA256 via [`prf`](crate::prf::prf())); it is **not** bit-compatible
//! with NIST FF1 (that needs AES-CBC-MAC framing and exact bias-free mod
//! reduction). Determinism, format preservation and invertibility — the
//! properties the DET class and the tests rely on — hold by construction.
//! Like everything in this crate it is a reference implementation for
//! reproducing mining semantics, not hardened crypto.

use crate::error::CryptoError;
use crate::keys::SymmetricKey;
use crate::prf::prf;
use crate::scheme::EncryptionClass;
use std::collections::HashMap;
use std::fmt;

/// Number of Feistel rounds (FF1 uses 10).
const ROUNDS: u8 = 10;

/// A finite, ordered symbol set the scheme's plaintexts are written in.
///
/// The radix is the number of symbols (2..=256). Standard alphabets are
/// provided; custom ones via [`Alphabet::from_symbols`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alphabet {
    symbols: Vec<char>,
    index: HashMap<char, u16>,
}

impl Alphabet {
    /// Builds an alphabet from distinct symbols.
    ///
    /// # Errors
    ///
    /// Fails when fewer than 2 or more than 256 symbols are given, or when
    /// a symbol repeats.
    pub fn from_symbols(symbols: impl IntoIterator<Item = char>) -> Result<Self, CryptoError> {
        let symbols: Vec<char> = symbols.into_iter().collect();
        if symbols.len() < 2 || symbols.len() > 256 {
            return Err(CryptoError::UnsupportedPlaintext(format!(
                "alphabet must have 2..=256 symbols, got {}",
                symbols.len()
            )));
        }
        let mut index = HashMap::with_capacity(symbols.len());
        for (i, &c) in symbols.iter().enumerate() {
            if index.insert(c, i as u16).is_some() {
                return Err(CryptoError::UnsupportedPlaintext(format!(
                    "alphabet symbol {c:?} repeats"
                )));
            }
        }
        Ok(Alphabet { symbols, index })
    }

    /// `0123456789`.
    pub fn digits() -> Self {
        Self::from_symbols('0'..='9').expect("static alphabet")
    }

    /// `a`–`z`.
    pub fn lowercase() -> Self {
        Self::from_symbols('a'..='z').expect("static alphabet")
    }

    /// `0`–`9`, `a`–`z` — the shape of SkyServer-style identifiers.
    pub fn alphanumeric() -> Self {
        Self::from_symbols(('0'..='9').chain('a'..='z')).expect("static alphabet")
    }

    /// Number of symbols.
    pub fn radix(&self) -> u16 {
        self.symbols.len() as u16
    }

    /// The symbols in index order.
    pub fn symbols(&self) -> impl Iterator<Item = char> + '_ {
        self.symbols.iter().copied()
    }

    /// `true` when every char of `s` is in the alphabet.
    pub fn spells(&self, s: &str) -> bool {
        s.chars().all(|c| self.index.contains_key(&c))
    }

    fn to_digits(&self, s: &str) -> Result<Vec<u16>, CryptoError> {
        s.chars()
            .map(|c| {
                self.index.get(&c).copied().ok_or_else(|| {
                    CryptoError::UnsupportedPlaintext(format!("symbol {c:?} not in alphabet"))
                })
            })
            .collect()
    }

    fn to_string(&self, digits: &[u16]) -> String {
        digits.iter().map(|&d| self.symbols[d as usize]).collect()
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Alphabet(radix {})", self.radix())
    }
}

/// Format-preserving deterministic encryption over an [`Alphabet`].
///
/// `Enc` maps a string of length `n ≥ 2` over the alphabet to another
/// string of the *same length over the same alphabet*, bijectively for each
/// `(key, tweak, n)`. Deterministic ⇒ a member of the DET class.
///
/// # Example
///
/// ```
/// use dpe_crypto::fpe::{Alphabet, FpeScheme};
/// use dpe_crypto::SymmetricKey;
///
/// let fpe = FpeScheme::new(&SymmetricKey::from_bytes([7; 32]), Alphabet::lowercase());
/// let ct = fpe.encrypt_str("galaxy", b"objname").unwrap();
/// assert_eq!(ct.len(), 6);
/// assert!(Alphabet::lowercase().spells(&ct));
/// assert_eq!(fpe.decrypt_str(&ct, b"objname").unwrap(), "galaxy");
/// ```
#[derive(Debug, Clone)]
pub struct FpeScheme {
    key: SymmetricKey,
    alphabet: Alphabet,
}

impl FpeScheme {
    /// Builds the scheme for `alphabet` under `key`.
    pub fn new(key: &SymmetricKey, alphabet: Alphabet) -> Self {
        FpeScheme {
            key: key.clone(),
            alphabet,
        }
    }

    /// The scheme's alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// DET: deterministic, equality-preserving.
    pub fn class(&self) -> EncryptionClass {
        EncryptionClass::Det
    }

    /// Encrypts `plaintext` under `tweak` (public context binding, e.g. the
    /// column name — same role as FF1's tweak).
    ///
    /// # Errors
    ///
    /// Fails when the plaintext is shorter than 2 symbols (the Feistel
    /// halves must both be non-empty) or uses symbols outside the alphabet.
    pub fn encrypt_str(&self, plaintext: &str, tweak: &[u8]) -> Result<String, CryptoError> {
        let digits = self.checked_digits(plaintext)?;
        let out = self.feistel(&digits, tweak, true);
        Ok(self.alphabet.to_string(&out))
    }

    /// Inverts [`FpeScheme::encrypt_str`] for the same `tweak`.
    pub fn decrypt_str(&self, ciphertext: &str, tweak: &[u8]) -> Result<String, CryptoError> {
        let digits = self.checked_digits(ciphertext)?;
        let out = self.feistel(&digits, tweak, false);
        Ok(self.alphabet.to_string(&out))
    }

    fn checked_digits(&self, s: &str) -> Result<Vec<u16>, CryptoError> {
        let digits = self.alphabet.to_digits(s)?;
        if digits.len() < 2 {
            return Err(CryptoError::UnsupportedPlaintext(format!(
                "FPE needs ≥ 2 symbols, got {}",
                digits.len()
            )));
        }
        Ok(digits)
    }

    /// 10-round Feistel over the split numeral string. `forward = false`
    /// runs the rounds in reverse with modular subtraction.
    fn feistel(&self, digits: &[u16], tweak: &[u8], forward: bool) -> Vec<u16> {
        let n = digits.len();
        let u = n / 2;
        let mut a: Vec<u16> = digits[..u].to_vec();
        let mut b: Vec<u16> = digits[u..].to_vec();

        let rounds: Vec<u8> = if forward {
            (0..ROUNDS).collect()
        } else {
            (0..ROUNDS).rev().collect()
        };
        for r in rounds {
            // Even rounds modify A from B; odd rounds modify B from A —
            // fixed data flow so decryption is the exact mirror.
            let (target, source) = if r % 2 == 0 {
                (&mut a, &b)
            } else {
                (&mut b, &a)
            };
            let pad = self.round_digits(r, source, tweak, target.len());
            if forward {
                numeral_add(target, &pad, self.alphabet.radix());
            } else {
                numeral_sub(target, &pad, self.alphabet.radix());
            }
        }
        a.extend_from_slice(&b);
        a
    }

    /// PRF-expands `(round, source half, tweak)` into `len` digits.
    fn round_digits(&self, round: u8, source: &[u16], tweak: &[u8], len: usize) -> Vec<u16> {
        let mut input = Vec::with_capacity(4 + tweak.len() + 2 * source.len() + 4);
        input.push(b'F');
        input.push(round);
        input.extend_from_slice(&(tweak.len() as u32).to_be_bytes());
        input.extend_from_slice(tweak);
        for &d in source {
            input.extend_from_slice(&d.to_be_bytes());
        }
        let radix = self.alphabet.radix();
        let mut out = Vec::with_capacity(len);
        let mut counter = 0u32;
        'fill: loop {
            let mut block_input = input.clone();
            block_input.extend_from_slice(&counter.to_be_bytes());
            let block = prf(&self.key, &block_input);
            for pair in block.chunks_exact(2) {
                let x = u16::from_be_bytes([pair[0], pair[1]]);
                out.push(x % radix);
                if out.len() == len {
                    break 'fill;
                }
            }
            counter += 1;
        }
        out
    }
}

/// `target ← (target + pad) mod radix^len` as little-endian-from-the-right
/// numeral addition (most significant digit first, carry runs right→left;
/// any carry out of the top digit is dropped — that is the mod).
fn numeral_add(target: &mut [u16], pad: &[u16], radix: u16) {
    debug_assert_eq!(target.len(), pad.len());
    let mut carry = 0u32;
    for i in (0..target.len()).rev() {
        let s = target[i] as u32 + pad[i] as u32 + carry;
        target[i] = (s % radix as u32) as u16;
        carry = s / radix as u32;
    }
}

/// `target ← (target − pad) mod radix^len`; exact inverse of [`numeral_add`].
fn numeral_sub(target: &mut [u16], pad: &[u16], radix: u16) {
    debug_assert_eq!(target.len(), pad.len());
    let mut borrow = 0i32;
    for i in (0..target.len()).rev() {
        let mut d = target[i] as i32 - pad[i] as i32 - borrow;
        if d < 0 {
            d += radix as i32;
            borrow = 1;
        } else {
            borrow = 0;
        }
        target[i] = d as u16;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme(alphabet: Alphabet) -> FpeScheme {
        FpeScheme::new(&SymmetricKey::from_bytes([99; 32]), alphabet)
    }

    #[test]
    fn roundtrip_lowercase() {
        let s = scheme(Alphabet::lowercase());
        for pt in [
            "ab",
            "skyserver",
            "photoobj",
            "zz",
            "aaaaaaaaaaaaaaaaaaaaaaaaaa",
        ] {
            let ct = s.encrypt_str(pt, b"t").unwrap();
            assert_eq!(ct.len(), pt.len(), "length not preserved for {pt:?}");
            assert!(
                s.alphabet().spells(&ct),
                "ciphertext leaves alphabet: {ct:?}"
            );
            assert_eq!(s.decrypt_str(&ct, b"t").unwrap(), pt);
        }
    }

    #[test]
    fn deterministic() {
        let s = scheme(Alphabet::alphanumeric());
        assert_eq!(
            s.encrypt_str("run42", b"col").unwrap(),
            s.encrypt_str("run42", b"col").unwrap()
        );
    }

    #[test]
    fn tweak_separates_contexts() {
        let s = scheme(Alphabet::digits());
        let c1 = s.encrypt_str("123456", b"ra").unwrap();
        let c2 = s.encrypt_str("123456", b"dec").unwrap();
        assert_ne!(c1, c2, "tweak must domain-separate columns");
    }

    #[test]
    fn key_separates() {
        let a = Alphabet::digits();
        let s1 = FpeScheme::new(&SymmetricKey::from_bytes([1; 32]), a.clone());
        let s2 = FpeScheme::new(&SymmetricKey::from_bytes([2; 32]), a);
        assert_ne!(
            s1.encrypt_str("987654321", b"").unwrap(),
            s2.encrypt_str("987654321", b"").unwrap()
        );
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        // A permutation can fix points, but over 26^9 inputs one chosen
        // string is virtually never fixed — and we pin the seed, so this is
        // deterministic.
        let s = scheme(Alphabet::lowercase());
        assert_ne!(s.encrypt_str("skyserver", b"t").unwrap(), "skyserver");
    }

    #[test]
    fn bijective_on_small_domain() {
        // Exhaust a tiny domain (digits, length 2): encryption must be a
        // permutation — all ciphertexts distinct, all in-format.
        let s = scheme(Alphabet::digits());
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..100 {
            let pt = format!("{i:02}");
            let ct = s.encrypt_str(&pt, b"x").unwrap();
            assert_eq!(ct.len(), 2);
            assert!(seen.insert(ct.clone()), "collision at {pt} → {ct}");
            assert_eq!(s.decrypt_str(&ct, b"x").unwrap(), pt);
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn rejects_too_short_and_out_of_alphabet() {
        let s = scheme(Alphabet::lowercase());
        assert!(matches!(
            s.encrypt_str("a", b""),
            Err(CryptoError::UnsupportedPlaintext(_))
        ));
        assert!(matches!(
            s.encrypt_str("Hello", b""),
            Err(CryptoError::UnsupportedPlaintext(_))
        ));
        assert!(matches!(
            s.encrypt_str("", b""),
            Err(CryptoError::UnsupportedPlaintext(_))
        ));
    }

    #[test]
    fn alphabet_constructors_and_validation() {
        assert_eq!(Alphabet::digits().radix(), 10);
        assert_eq!(Alphabet::lowercase().radix(), 26);
        assert_eq!(Alphabet::alphanumeric().radix(), 36);
        assert!(Alphabet::from_symbols(['a']).is_err());
        assert!(Alphabet::from_symbols(['a', 'a']).is_err());
        assert!(Alphabet::from_symbols(['a', 'b']).is_ok());
    }

    #[test]
    fn numeral_arithmetic_inverts() {
        let radix = 26;
        let orig = vec![3u16, 25, 0, 7, 13];
        let pad = vec![9u16, 25, 25, 1, 20];
        let mut x = orig.clone();
        numeral_add(&mut x, &pad, radix);
        numeral_sub(&mut x, &pad, radix);
        assert_eq!(x, orig);
    }

    #[test]
    fn odd_lengths_roundtrip() {
        let s = scheme(Alphabet::alphanumeric());
        for len in 2..20 {
            let pt: String = (0..len)
                .map(|i| char::from(b'a' + (i % 26) as u8))
                .collect();
            let ct = s.encrypt_str(&pt, b"odd").unwrap();
            assert_eq!(s.decrypt_str(&ct, b"odd").unwrap(), pt);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_alphabet() -> impl Strategy<Value = Alphabet> {
            prop_oneof![
                Just(Alphabet::digits()),
                Just(Alphabet::lowercase()),
                Just(Alphabet::alphanumeric()),
            ]
        }

        proptest! {
            #[test]
            fn roundtrip_any_plaintext(
                alphabet in arb_alphabet(),
                indices in proptest::collection::vec(0usize..36, 2..40),
                key_byte in 0u8..255,
                tweak in proptest::collection::vec(0u8..255, 0..16),
            ) {
                let symbols: Vec<char> = alphabet.symbols().collect();
                let pt: String = indices.iter().map(|&i| symbols[i % symbols.len()]).collect();
                let s = FpeScheme::new(&SymmetricKey::from_bytes([key_byte; 32]), alphabet.clone());
                let ct = s.encrypt_str(&pt, &tweak).unwrap();
                prop_assert_eq!(ct.chars().count(), pt.chars().count());
                prop_assert!(alphabet.spells(&ct));
                prop_assert_eq!(s.decrypt_str(&ct, &tweak).unwrap(), pt);
            }

            #[test]
            fn determinism_is_exact(
                indices in proptest::collection::vec(0usize..10, 2..20),
            ) {
                let pt: String = indices.iter().map(|&i| char::from(b'0' + i as u8)).collect();
                let s = scheme(Alphabet::digits());
                prop_assert_eq!(
                    s.encrypt_str(&pt, b"col").unwrap(),
                    s.encrypt_str(&pt, b"col").unwrap()
                );
            }

            #[test]
            fn numeral_add_sub_inverse(
                digits in proptest::collection::vec(0u16..26, 1..24),
                pad in proptest::collection::vec(0u16..26, 1..24),
            ) {
                let len = digits.len().min(pad.len());
                let orig: Vec<u16> = digits[..len].to_vec();
                let pad: Vec<u16> = pad[..len].to_vec();
                let mut x = orig.clone();
                numeral_add(&mut x, &pad, 26);
                prop_assert!(x.iter().all(|&d| d < 26));
                numeral_sub(&mut x, &pad, 26);
                prop_assert_eq!(x, orig);
            }
        }
    }
}
