//! # dpe-crypto — symmetric primitives and the PROB / DET / JOIN classes
//!
//! From-scratch implementations of everything the property-preserving
//! encryption (PPE) taxonomy of the paper's Fig. 1 needs below the OPE/HOM
//! level:
//!
//! * [`aes`] — the AES block cipher (FIPS-197), 128- and 256-bit keys,
//!   validated against the FIPS appendix vectors;
//! * [`sha256`] / [`hmac`] — SHA-256 (FIPS 180-4) and HMAC-SHA256 (RFC 2104),
//!   validated against RFC 4231;
//! * [`ctr`] — counter-mode keystream on top of AES;
//! * [`prf`] / [`kdf`] — a keyed PRF and label-based key derivation so one
//!   master key can safely fan out into per-slot scheme keys;
//! * [`prob`] — **PROB**: randomized AES-CTR (fresh random nonce per call) —
//!   the paper's "randomized AES \[12\] is an instance of PROB";
//! * [`det`] — **DET**: SIV-style deterministic encryption
//!   (`IV = PRF(K_mac, plaintext)`, `ct = CTR(K_enc, IV, plaintext)`), so equal
//!   plaintexts map to equal ciphertexts and nothing else is preserved;
//! * [`join`] — **JOIN**: the CryptDB-style usage mode of DET in which one key
//!   is shared across join-compatible columns;
//! * [`fpe`] — format-preserving encryption (FF1-style Feistel), an
//!   alternative **DET** instance whose ciphertexts stay in the column's
//!   alphabet and length (the L-EncDB \[10\] approach).
//!
//! The [`scheme`] module defines the common [`scheme::SymmetricScheme`] trait
//! plus the class descriptors ([`scheme::EncryptionClass`]) that the KIT-DPE
//! selection engine (Definition 6) operates on.
//!
//! Reference implementation for reproducing the paper's mining semantics —
//! **not** constant-time, **not** for production secrets.

#![forbid(unsafe_code)]

pub mod aes;
pub mod ctr;
pub mod det;
pub mod error;
pub mod fpe;
pub mod hmac;
pub mod join;
pub mod kdf;
pub mod keys;
pub mod prf;
pub mod prob;
pub mod scheme;
pub mod sha256;

pub use det::DetScheme;
pub use error::CryptoError;
pub use fpe::{Alphabet, FpeScheme};
pub use join::JoinGroup;
pub use keys::{MasterKey, SymmetricKey};
pub use prob::ProbScheme;
pub use scheme::{Ciphertext, EncryptionClass, SymmetricScheme};
