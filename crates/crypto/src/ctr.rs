//! AES counter mode: a keystream XORed over arbitrary-length messages.
//!
//! The 16-byte counter block is `nonce (12 bytes) || big-endian u32 counter`,
//! so one (key, nonce) pair can encrypt up to 2^32 blocks (64 GiB) — far more
//! than any query log item.

use crate::aes::Aes;

/// XORs the AES-CTR keystream for `(aes, nonce)` over `data` in place.
/// Applying it twice with the same parameters decrypts.
pub fn ctr_xor(aes: &Aes, nonce: &[u8; 12], data: &mut [u8]) {
    let mut counter_block = [0u8; 16];
    counter_block[..12].copy_from_slice(nonce);
    for (block_idx, chunk) in data.chunks_mut(16).enumerate() {
        counter_block[12..].copy_from_slice(&(block_idx as u32).to_be_bytes());
        let mut keystream = counter_block;
        aes.encrypt_block(&mut keystream);
        for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
            *b ^= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aes() -> Aes {
        Aes::new_256(&[7u8; 32])
    }

    #[test]
    fn xor_twice_is_identity() {
        let mut data = b"attack at dawn, twice around the block and then some".to_vec();
        let original = data.clone();
        let nonce = [1u8; 12];
        ctr_xor(&aes(), &nonce, &mut data);
        assert_ne!(data, original);
        ctr_xor(&aes(), &nonce, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_nonces_different_streams() {
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        ctr_xor(&aes(), &[1u8; 12], &mut a);
        ctr_xor(&aes(), &[2u8; 12], &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_message_is_noop() {
        let mut data: Vec<u8> = Vec::new();
        ctr_xor(&aes(), &[0u8; 12], &mut data);
        assert!(data.is_empty());
    }

    #[test]
    fn partial_final_block() {
        let mut data = vec![0xAB; 17]; // one full block + 1 byte
        let nonce = [3u8; 12];
        ctr_xor(&aes(), &nonce, &mut data);
        ctr_xor(&aes(), &nonce, &mut data);
        assert_eq!(data, vec![0xAB; 17]);
    }

    #[test]
    fn keystream_blocks_are_position_dependent() {
        // Same plaintext byte at different positions must encrypt differently
        // (counter varies), otherwise CTR degenerates to a repeating pad.
        let mut data = vec![0u8; 48];
        ctr_xor(&aes(), &[9u8; 12], &mut data);
        assert_ne!(&data[..16], &data[16..32]);
        assert_ne!(&data[16..32], &data[32..48]);
    }
}
