//! A keyed pseudo-random function (HMAC-SHA256) with convenience output
//! shapes. The OPE crate uses it to derive per-interval pivots; the DET class
//! uses it as its synthetic IV.

use crate::hmac::hmac_sha256;
use crate::keys::SymmetricKey;

/// Full 32-byte PRF output.
pub fn prf(key: &SymmetricKey, input: &[u8]) -> [u8; 32] {
    hmac_sha256(key.as_bytes(), input)
}

/// PRF truncated to a `u64` (big-endian top 8 bytes).
pub fn prf_u64(key: &SymmetricKey, input: &[u8]) -> u64 {
    let out = prf(key, input);
    u64::from_be_bytes(out[..8].try_into().unwrap())
}

/// PRF truncated to a `u128` (big-endian top 16 bytes).
pub fn prf_u128(key: &SymmetricKey, input: &[u8]) -> u128 {
    let out = prf(key, input);
    u128::from_be_bytes(out[..16].try_into().unwrap())
}

/// PRF output reduced uniformly-enough into `[0, bound)` for pivot selection.
///
/// Uses 128-bit multiplication to avoid the modulo-bias of a plain `%` when
/// `bound` is large. Panics when `bound == 0`.
pub fn prf_below(key: &SymmetricKey, input: &[u8], bound: u64) -> u64 {
    assert!(bound > 0, "prf_below bound must be positive");
    let wide = prf_u64(key, input) as u128 * bound as u128;
    (wide >> 64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u8) -> SymmetricKey {
        SymmetricKey::from_bytes([b; 32])
    }

    #[test]
    fn deterministic_per_key_and_input() {
        assert_eq!(prf(&key(1), b"x"), prf(&key(1), b"x"));
        assert_ne!(prf(&key(1), b"x"), prf(&key(2), b"x"));
        assert_ne!(prf(&key(1), b"x"), prf(&key(1), b"y"));
    }

    #[test]
    fn truncations_are_prefixes() {
        let full = prf(&key(3), b"abc");
        assert_eq!(prf_u64(&key(3), b"abc").to_be_bytes(), full[..8]);
        assert_eq!(prf_u128(&key(3), b"abc").to_be_bytes(), full[..16]);
    }

    #[test]
    fn prf_below_respects_bound() {
        for bound in [1u64, 2, 7, 1000, u64::MAX] {
            for i in 0..50u32 {
                let v = prf_below(&key(4), &i.to_be_bytes(), bound);
                assert!(v < bound, "v={v} bound={bound}");
            }
        }
    }

    #[test]
    fn prf_below_covers_small_range() {
        let mut seen = [false; 5];
        for i in 0..200u32 {
            seen[prf_below(&key(5), &i.to_be_bytes(), 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn prf_below_zero_bound_panics() {
        prf_below(&key(0), b"", 0);
    }
}
