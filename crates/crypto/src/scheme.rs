//! The property-preserving encryption class model (the paper's Fig. 1) and
//! the common trait implemented by every byte-oriented scheme.

use crate::error::CryptoError;
use rand::RngCore;
use std::fmt;

/// The property-preserving encryption classes of Fig. 1.
///
/// The derived order of declaration is irrelevant; the *security* order is
/// given by [`EncryptionClass::security_level`] and the subclass edges by
/// [`EncryptionClass::parents`]. Classes in the same level are incomparable
/// ("for classes in the same row, a security ranking is not possible").
// The clippy.toml ban on `PartialOrd::partial_cmp` targets NaN-prone
// float sorts; this derive expands to field-wise partial_cmp over
// non-float fields, which cannot hit the NaN pitfall.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EncryptionClass {
    /// Probabilistic encryption: equal plaintexts map to different
    /// ciphertexts (randomized AES is an instance).
    Prob,
    /// Homomorphic encryption (Paillier): probabilistic, supports sums over
    /// ciphertexts.
    Hom,
    /// Deterministic encryption: equal plaintexts map to equal ciphertexts.
    Det,
    /// Order-preserving encryption: deterministic and order-preserving.
    Ope,
    /// JOIN usage mode of DET: one key shared across join-compatible columns.
    Join,
    /// JOIN usage mode of OPE (range joins over encrypted data).
    JoinOpe,
}

impl EncryptionClass {
    /// All classes, most secure first.
    pub const ALL: [EncryptionClass; 6] = [
        EncryptionClass::Prob,
        EncryptionClass::Hom,
        EncryptionClass::Det,
        EncryptionClass::Ope,
        EncryptionClass::Join,
        EncryptionClass::JoinOpe,
    ];

    /// The security row in Fig. 1; higher is better. PROB is alone at the
    /// top; HOM and DET share a row; OPE and JOIN share a row; JOIN-OPE is
    /// at the bottom.
    pub fn security_level(self) -> u8 {
        match self {
            EncryptionClass::Prob => 3,
            EncryptionClass::Hom | EncryptionClass::Det => 2,
            EncryptionClass::Ope | EncryptionClass::Join => 1,
            EncryptionClass::JoinOpe => 0,
        }
    }

    /// Direct superclasses (the `→: subclass` arrows of Fig. 1, reversed).
    pub fn parents(self) -> &'static [EncryptionClass] {
        match self {
            EncryptionClass::Prob => &[],
            EncryptionClass::Hom => &[EncryptionClass::Prob],
            EncryptionClass::Det => &[],
            EncryptionClass::Ope => &[EncryptionClass::Det],
            EncryptionClass::Join => &[EncryptionClass::Det],
            EncryptionClass::JoinOpe => &[EncryptionClass::Ope, EncryptionClass::Join],
        }
    }

    /// `true` iff `self` is `other` or a (transitive) subclass of it.
    pub fn is_subclass_of(self, other: EncryptionClass) -> bool {
        if self == other {
            return true;
        }
        self.parents().iter().any(|p| p.is_subclass_of(other))
    }

    /// Whether two equal plaintexts always produce equal ciphertexts.
    pub fn preserves_equality(self) -> bool {
        self.is_subclass_of(EncryptionClass::Det)
    }

    /// Whether plaintext order is visible on ciphertexts.
    pub fn preserves_order(self) -> bool {
        self.is_subclass_of(EncryptionClass::Ope) || self == EncryptionClass::JoinOpe
    }

    /// Whether arithmetic aggregates (sums) can be computed over ciphertexts.
    pub fn supports_aggregation(self) -> bool {
        self == EncryptionClass::Hom
    }

    /// Whether equi-joins across columns are possible on ciphertexts.
    pub fn supports_join(self) -> bool {
        matches!(self, EncryptionClass::Join | EncryptionClass::JoinOpe)
    }

    /// Short uppercase name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            EncryptionClass::Prob => "PROB",
            EncryptionClass::Hom => "HOM",
            EncryptionClass::Det => "DET",
            EncryptionClass::Ope => "OPE",
            EncryptionClass::Join => "JOIN",
            EncryptionClass::JoinOpe => "JOIN-OPE",
        }
    }
}

impl fmt::Display for EncryptionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An opaque byte ciphertext.
///
/// `Eq`/`Hash`/`Ord` are structural over the bytes: for DET schemes this is
/// exactly the equality the encrypted mining pipeline exploits.
// The clippy.toml ban on `PartialOrd::partial_cmp` targets NaN-prone
// float sorts; this derive expands to field-wise partial_cmp over
// non-float fields, which cannot hit the NaN pitfall.
#[allow(clippy::disallowed_methods)]
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ciphertext(pub Vec<u8>);

impl Ciphertext {
    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Hex rendering (used when ciphertexts stand in for identifiers in
    /// encrypted SQL text).
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Ciphertext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ciphertext({})", self.to_hex())
    }
}

/// Common interface of the byte-oriented symmetric schemes (PROB, DET, JOIN).
///
/// OPE and HOM have value-typed interfaces of their own (`dpe-ope`,
/// `dpe-paillier`); the KIT-DPE layer bridges them.
pub trait SymmetricScheme {
    /// Encrypts `plaintext`. Probabilistic schemes draw randomness from
    /// `rng`; deterministic schemes ignore it.
    fn encrypt(&self, plaintext: &[u8], rng: &mut dyn RngCore) -> Ciphertext;

    /// Recovers the plaintext.
    fn decrypt(&self, ciphertext: &Ciphertext) -> Result<Vec<u8>, CryptoError>;

    /// The class this scheme instantiates.
    fn class(&self) -> EncryptionClass;

    /// Encrypts many plaintexts in submission order — the streaming-ingest
    /// entry point. The default implementation loops [`SymmetricScheme::encrypt`]
    /// (and is therefore bit-identical to it); schemes with amortizable
    /// per-call setup may override it, as the value-typed Paillier engine
    /// does in `dpe-paillier::batch`.
    fn encrypt_batch(&self, plaintexts: &[&[u8]], rng: &mut dyn RngCore) -> Vec<Ciphertext> {
        plaintexts.iter().map(|p| self.encrypt(p, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn security_levels_match_figure_1() {
        use EncryptionClass::*;
        assert_eq!(Prob.security_level(), 3);
        assert_eq!(Hom.security_level(), 2);
        assert_eq!(Det.security_level(), 2);
        assert_eq!(Ope.security_level(), 1);
        assert_eq!(Join.security_level(), 1);
        assert_eq!(JoinOpe.security_level(), 0);
    }

    #[test]
    fn subclass_closure() {
        use EncryptionClass::*;
        assert!(Hom.is_subclass_of(Prob));
        assert!(Ope.is_subclass_of(Det));
        assert!(Join.is_subclass_of(Det));
        assert!(JoinOpe.is_subclass_of(Det)); // via OPE or JOIN
        assert!(JoinOpe.is_subclass_of(Ope));
        assert!(!Det.is_subclass_of(Prob));
        assert!(!Prob.is_subclass_of(Det));
        assert!(Prob.is_subclass_of(Prob));
    }

    #[test]
    fn property_flags() {
        use EncryptionClass::*;
        assert!(!Prob.preserves_equality());
        assert!(!Hom.preserves_equality());
        assert!(Det.preserves_equality());
        assert!(Ope.preserves_equality() && Ope.preserves_order());
        assert!(!Det.preserves_order());
        assert!(Hom.supports_aggregation());
        assert!(!Det.supports_aggregation());
        assert!(Join.supports_join() && JoinOpe.supports_join());
        assert!(!Ope.supports_join());
    }

    #[test]
    fn subclasses_never_gain_security() {
        // Walking down any subclass edge must not increase the level —
        // the taxonomy's "less security" axis.
        for class in EncryptionClass::ALL {
            for parent in class.parents() {
                assert!(class.security_level() <= parent.security_level());
            }
        }
    }

    #[test]
    fn batch_encryption_matches_sequential_for_every_class() {
        use crate::kdf::SlotLabel;
        use crate::{DetScheme, JoinGroup, MasterKey, ProbScheme};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let master = MasterKey::from_bytes([7; 32]);
        let plaintexts: Vec<&[u8]> = vec![b"alpha", b"", b"SELECT ra FROM photoobj"];
        let det = DetScheme::new(&SlotLabel::Constant("t").derive(&master));
        let prob = ProbScheme::new(&SlotLabel::Constant("t").derive(&master));
        let join = JoinGroup::new(&master, "t");
        let schemes: Vec<&dyn SymmetricScheme> = vec![&det, &prob, join.scheme()];
        for scheme in schemes {
            let batched = scheme.encrypt_batch(&plaintexts, &mut StdRng::seed_from_u64(1));
            let mut rng = StdRng::seed_from_u64(1);
            let sequential: Vec<Ciphertext> = plaintexts
                .iter()
                .map(|p| scheme.encrypt(p, &mut rng))
                .collect();
            assert_eq!(batched, sequential, "{}", scheme.class());
            for (p, ct) in plaintexts.iter().zip(&batched) {
                assert_eq!(&scheme.decrypt(ct).unwrap(), p, "{}", scheme.class());
            }
        }
    }

    #[test]
    fn ciphertext_hex() {
        let ct = Ciphertext(vec![0xde, 0xad, 0x01]);
        assert_eq!(ct.to_hex(), "dead01");
        assert_eq!(ct.len(), 3);
        assert!(!ct.is_empty());
    }
}
