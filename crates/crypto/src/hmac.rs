//! HMAC-SHA256 (RFC 2104), validated against the RFC 4231 test vectors.

use crate::sha256::{sha256, Sha256};

const BLOCK_LEN: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-shape comparison of two MACs (length + bytes folded into one
/// accumulator). Good enough for a research artifact.
pub fn verify_hmac(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
    let expect = hmac_sha256(key, message);
    if tag.len() != expect.len() {
        return false;
    }
    tag.iter()
        .zip(expect.iter())
        .fold(0u8, |acc, (a, b)| acc | (a ^ b))
        == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify_hmac(b"k", b"m", &tag));
        assert!(!verify_hmac(b"k", b"m2", &tag));
        assert!(!verify_hmac(b"k2", b"m", &tag));
        assert!(!verify_hmac(b"k", b"m", &tag[..16]));
    }

    #[test]
    fn keyed_separation() {
        assert_ne!(hmac_sha256(b"key-a", b"msg"), hmac_sha256(b"key-b", b"msg"));
    }
}
