//! Error type shared by the symmetric schemes.

use std::fmt;

/// Errors from encryption/decryption operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// Ciphertext shorter than its mandatory header.
    CiphertextTooShort {
        /// Bytes required by the scheme's framing.
        expected_at_least: usize,
        /// Bytes actually provided.
        got: usize,
    },
    /// The deterministic scheme's synthetic IV did not verify: the ciphertext
    /// was corrupted or produced under a different key.
    IntegrityCheckFailed,
    /// The plaintext cannot be represented by this scheme (e.g. out of the
    /// OPE domain).
    UnsupportedPlaintext(String),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::CiphertextTooShort {
                expected_at_least,
                got,
            } => {
                write!(
                    f,
                    "ciphertext too short: need ≥ {expected_at_least} bytes, got {got}"
                )
            }
            CryptoError::IntegrityCheckFailed => {
                write!(
                    f,
                    "ciphertext failed integrity verification (wrong key or corrupted)"
                )
            }
            CryptoError::UnsupportedPlaintext(msg) => {
                write!(f, "unsupported plaintext: {msg}")
            }
        }
    }
}

impl std::error::Error for CryptoError {}
