//! The AES block cipher (FIPS-197), supporting 128- and 256-bit keys.
//!
//! Straightforward byte-oriented implementation: S-box lookup tables,
//! `xtime`-based MixColumns, column-major state. Validated against the
//! FIPS-197 Appendix C known-answer vectors. Decryption implements the
//! inverse cipher (needed by the DET class to recover plaintexts).

/// AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse AES S-box.
const INV_SBOX: [u8; 256] = [
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7, 0xfb,
    0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87, 0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb,
    0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49, 0x6d, 0x8b, 0xd1, 0x25,
    0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16, 0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92,
    0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06,
    0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02, 0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b,
    0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e,
    0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89, 0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b,
    0xfc, 0x56, 0x3e, 0x4b, 0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f,
    0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d, 0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef,
    0xa0, 0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c, 0x7d,
];

const RCON: [u8; 15] = [
    0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d, 0x9a,
];

/// Multiplication by `x` in GF(2^8) with the AES polynomial `x^8+x^4+x^3+x+1`.
#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// GF(2^8) multiplication (only small constants are ever needed).
#[inline]
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    while b != 0 {
        if b & 1 == 1 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// An expanded AES key, ready to encrypt/decrypt 16-byte blocks.
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
}

impl Aes {
    /// Expands a 128-bit key (10 rounds).
    pub fn new_128(key: &[u8; 16]) -> Self {
        Aes {
            round_keys: expand_key(key, 4, 10),
        }
    }

    /// Expands a 256-bit key (14 rounds).
    pub fn new_256(key: &[u8; 32]) -> Self {
        Aes {
            round_keys: expand_key(key, 8, 14),
        }
    }

    /// Number of rounds (10 for AES-128, 14 for AES-256).
    pub fn rounds(&self) -> usize {
        self.round_keys.len() - 1
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let rounds = self.rounds();
        add_round_key(block, &self.round_keys[0]);
        for round in 1..rounds {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[rounds]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        let rounds = self.rounds();
        add_round_key(block, &self.round_keys[rounds]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for round in (1..rounds).rev() {
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, &self.round_keys[0]);
    }
}

/// FIPS-197 key expansion for Nk words and Nr rounds.
fn expand_key(key: &[u8], nk: usize, nr: usize) -> Vec<[u8; 16]> {
    let total_words = 4 * (nr + 1);
    let mut words: Vec<[u8; 4]> = Vec::with_capacity(total_words);
    for chunk in key.chunks(4) {
        words.push([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in nk..total_words {
        let mut temp = words[i - 1];
        if i % nk == 0 {
            temp.rotate_left(1);
            for b in &mut temp {
                *b = SBOX[*b as usize];
            }
            temp[0] ^= RCON[i / nk - 1];
        } else if nk > 6 && i % nk == 4 {
            for b in &mut temp {
                *b = SBOX[*b as usize];
            }
        }
        let prev = words[i - nk];
        words.push([
            prev[0] ^ temp[0],
            prev[1] ^ temp[1],
            prev[2] ^ temp[2],
            prev[3] ^ temp[3],
        ]);
    }
    words
        .chunks(4)
        .map(|c| {
            let mut rk = [0u8; 16];
            for (i, w) in c.iter().enumerate() {
                rk[i * 4..i * 4 + 4].copy_from_slice(w);
            }
            rk
        })
        .collect()
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

#[inline]
fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

/// State layout is column-major: byte `state[4c + r]` is row r, column c.
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

#[inline]
fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut state[4 * c..4 * c + 4];
        let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
        col[0] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
        col[1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
        col[2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
        col[3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
    }
}

#[inline]
fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut state[4 * c..4 * c + 4];
        let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
        col[0] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09);
        col[1] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d);
        col[2] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b);
        col[3] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips197_appendix_c1_aes128() {
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes::new_128(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_appendix_c3_aes256() {
        let key: [u8; 32] = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
            .try_into()
            .unwrap();
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes::new_256(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("8ea2b7ca516745bfeafc49904b496089"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_appendix_b_aes128() {
        // The worked example from Appendix B.
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let mut block: [u8; 16] = hex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        Aes::new_128(&key).encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn key_expansion_round_count() {
        assert_eq!(Aes::new_128(&[0; 16]).rounds(), 10);
        assert_eq!(Aes::new_256(&[0; 32]).rounds(), 14);
    }

    #[test]
    fn roundtrip_random_blocks() {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut key = [0u8; 32];
        rng.fill_bytes(&mut key);
        let aes = Aes::new_256(&key);
        for _ in 0..64 {
            let mut block = [0u8; 16];
            rng.fill_bytes(&mut block);
            let original = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, original, "ciphertext must differ from plaintext");
            aes.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    fn gf_multiplication_table_spotchecks() {
        assert_eq!(gmul(0x57, 0x13), 0xfe); // FIPS-197 §4.2 example
        assert_eq!(gmul(0x57, 0x02), 0xae);
        assert_eq!(gmul(0x01, 0xff), 0xff);
    }
}
