//! **JOIN** — the usage mode of DET in which join-compatible columns share
//! one key (CryptDB's JOIN layer, and the paper's Fig. 1 JOIN class).
//!
//! With per-column DET keys, `Enc_colA(v) ≠ Enc_colB(v)` and equi-joins over
//! ciphertexts are impossible. A [`JoinGroup`] deliberately gives a *set* of
//! columns the same DET key so ciphertext equality spans the group — trading
//! one security level (cross-column frequency linkage becomes possible,
//! hence JOIN sits below DET in Fig. 1) for join capability.

use crate::det::DetScheme;
use crate::kdf::SlotLabel;
use crate::keys::MasterKey;
use crate::scheme::EncryptionClass;

/// A named group of join-compatible columns sharing one DET key.
#[derive(Clone)]
pub struct JoinGroup {
    name: String,
    scheme: DetScheme,
}

impl JoinGroup {
    /// Creates (or re-derives) the group `name` under `master`. The same
    /// `(master, name)` always yields the same scheme, so every column in
    /// the group encrypts values identically.
    pub fn new(master: &MasterKey, name: &str) -> Self {
        let key = SlotLabel::JoinGroup(name).derive(master);
        JoinGroup {
            name: name.to_string(),
            scheme: DetScheme::with_class(&key, EncryptionClass::Join),
        }
    }

    /// The group name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared deterministic scheme (class reports [`EncryptionClass::Join`]).
    pub fn scheme(&self) -> &DetScheme {
        &self.scheme
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SymmetricScheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn master() -> MasterKey {
        MasterKey::from_bytes([13; 32])
    }

    #[test]
    fn same_group_same_ciphertexts() {
        // Two "columns" in one group: ciphertext equality spans them,
        // which is exactly what makes encrypted equi-joins work.
        let mut rng = StdRng::seed_from_u64(0);
        let g1 = JoinGroup::new(&master(), "objid");
        let g2 = JoinGroup::new(&master(), "objid");
        let a = g1.scheme().encrypt(b"587722982829850763", &mut rng);
        let b = g2.scheme().encrypt(b"587722982829850763", &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn different_groups_different_ciphertexts() {
        let mut rng = StdRng::seed_from_u64(0);
        let g1 = JoinGroup::new(&master(), "objid");
        let g2 = JoinGroup::new(&master(), "specid");
        assert_ne!(
            g1.scheme().encrypt(b"42", &mut rng),
            g2.scheme().encrypt(b"42", &mut rng)
        );
    }

    #[test]
    fn class_reports_join() {
        let g = JoinGroup::new(&master(), "objid");
        assert_eq!(g.scheme().class(), EncryptionClass::Join);
        assert_eq!(g.scheme().class().security_level(), 1);
        assert_eq!(g.name(), "objid");
    }

    #[test]
    fn join_roundtrips() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = JoinGroup::new(&master(), "objid");
        let ct = g.scheme().encrypt(b"12345", &mut rng);
        assert_eq!(g.scheme().decrypt(&ct).unwrap(), b"12345");
    }
}
