//! Offline stand-in for the `criterion` crate, implementing the API subset
//! the workspace's benches use: `Criterion`, `BenchmarkGroup`, `Bencher`
//! (`iter`, `iter_batched`), `BatchSize`, `Throughput`, `BenchmarkId`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's full statistical machinery it runs a short
//! warm-up, takes a fixed number of timed samples, and prints the median
//! per-iteration time. That keeps `cargo bench` useful for relative
//! comparisons while building with zero dependencies (the build environment
//! has no registry access).
//!
//! Two CI-oriented extensions over the plain shim:
//!
//! * **Quick mode** — passing `--quick` on the bench command line (as in
//!   real criterion: `cargo bench -- --quick`) or setting
//!   `DPE_BENCH_QUICK=1` caps every benchmark at 3 samples and a ~5 ms
//!   measurement budget, making a full bench sweep cheap enough for a
//!   per-PR smoke job.
//! * **Machine-readable results** — when `DPE_BENCH_JSON` names a file,
//!   every benchmark appends one JSON line
//!   `{"bench":"<group>/<id>","lo_ns":…,"median_ns":…,"hi_ns":…}` to it.
//!   Bench binaries run sequentially under `cargo bench`, so appending is
//!   race-free; the `bench_json` bin in `dpe-bench` consolidates the lines
//!   into the repo-level `BENCH_*.json` trajectory files.

use std::fmt;
use std::io::Write as _;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// How batched inputs are grouped per measurement (mirrors `criterion::BatchSize`).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation for a benchmark group (mirrors `criterion::Throughput`).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark identifier: `function_name/parameter` (mirrors `criterion::BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark id (`&str`, `String`, or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Prevents the optimizer from eliding a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timer handed to each benchmark closure (mirrors `criterion::Bencher`).
pub struct Bencher {
    /// Total measured time across all recorded iterations.
    elapsed: Duration,
    /// Number of iterations recorded.
    iters: u64,
    /// Iterations to run per sample, chosen by the harness.
    sample_iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.sample_iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += self.sample_iters;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.sample_iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        for _ in 0..self.sample_iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

fn format_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

/// `true` when `--quick` was passed to the bench binary (criterion's fast
/// mode) or `DPE_BENCH_QUICK` is set in the environment.
fn quick_mode() -> bool {
    static QUICK: OnceLock<bool> = OnceLock::new();
    *QUICK.get_or_init(|| {
        std::env::args().any(|a| a == "--quick") || std::env::var_os("DPE_BENCH_QUICK").is_some()
    })
}

/// The JSONL result sink named by `DPE_BENCH_JSON`, if any.
fn json_sink() -> Option<&'static str> {
    static SINK: OnceLock<Option<String>> = OnceLock::new();
    SINK.get_or_init(|| {
        std::env::var("DPE_BENCH_JSON")
            .ok()
            .filter(|p| !p.is_empty())
    })
    .as_deref()
}

/// One benchmark's JSONL record (names are ASCII from source literals, but
/// escape quotes and backslashes anyway).
fn json_line(name: &str, lo: f64, median: f64, hi: f64) -> String {
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c < ' ' => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    format!(
        "{{\"bench\":\"{escaped}\",\"lo_ns\":{lo:.1},\"median_ns\":{median:.1},\"hi_ns\":{hi:.1}}}"
    )
}

/// Appends one record to `path`, creating the file on first use.
fn append_json_line(path: &str, line: &str) {
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{line}"));
    if let Err(e) = result {
        eprintln!("warning: could not append bench result to {path}: {e}");
    }
}

fn run_one(
    full_name: &str,
    throughput: Option<Throughput>,
    samples: u64,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let samples = if quick_mode() {
        samples.min(3)
    } else {
        samples
    };
    // One untimed warm-up pass (also sizes the measurement loop).
    let mut warm = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
        sample_iters: 1,
    };
    let warm_start = Instant::now();
    f(&mut warm);
    let warm_wall = warm_start.elapsed();

    // Aim for ~50ms of total measurement (~5ms in quick mode), at least one
    // iteration per sample.
    let per_iter = warm_wall.as_nanos().max(1) / u128::from(warm.iters.max(1));
    let budget_ns: u128 = if quick_mode() { 5_000_000 } else { 50_000_000 };
    let total_iters = (budget_ns / per_iter.max(1)).clamp(1, 1_000) as u64;
    let sample_iters = (total_iters / samples.max(1)).max(1);

    let mut nanos_per_iter: Vec<f64> = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            sample_iters,
        };
        f(&mut b);
        if b.iters > 0 {
            nanos_per_iter.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
    }
    nanos_per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = nanos_per_iter
        .get(nanos_per_iter.len() / 2)
        .copied()
        .unwrap_or(0.0);
    let lo = nanos_per_iter.first().copied().unwrap_or(0.0);
    let hi = nanos_per_iter.last().copied().unwrap_or(0.0);

    if let Some(path) = json_sink() {
        append_json_line(path, &json_line(full_name, lo, median, hi));
    }

    let mut line = format!(
        "{full_name:<50} time: [{} {} {}]",
        format_time(lo),
        format_time(median),
        format_time(hi)
    );
    if let Some(tp) = throughput {
        let per_second = |count: u64| {
            if median > 0.0 {
                count as f64 * 1e9 / median
            } else {
                0.0
            }
        };
        match tp {
            Throughput::Bytes(n) => {
                line.push_str(&format!(
                    "  thrpt: {:.2} MiB/s",
                    per_second(n) / (1024.0 * 1024.0)
                ));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: {:.2} elem/s", per_second(n)));
            }
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion requires >= 10; the shim just caps the timed samples.
        self.samples = (n as u64).clamp(2, 30);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.throughput, self.samples, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.throughput, self.samples, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    samples: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Builder-style sample count (mirrors `Criterion::sample_size`).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = (n as u64).clamp(2, 30);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            name,
            samples: self.samples,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.samples;
        run_one(&id.into_id(), None, samples, &mut f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut calls = 0u64;
        group.bench_function("counter", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn json_line_escapes_and_formats() {
        let line = json_line("group/bench", 10.0, 20.55, 31.0);
        assert_eq!(
            line,
            "{\"bench\":\"group/bench\",\"lo_ns\":10.0,\"median_ns\":20.6,\"hi_ns\":31.0}"
        );
        let hostile = json_line("a\"b\\c\nd", 1.0, 2.0, 3.0);
        assert!(hostile.contains("a\\\"b\\\\c\\u000ad"), "{hostile}");
    }

    #[test]
    fn append_json_line_accumulates_records() {
        let path = std::env::temp_dir().join(format!(
            "dpe-criterion-shim-test-{}.jsonl",
            std::process::id()
        ));
        let path_str = path.to_str().unwrap();
        let _ = std::fs::remove_file(&path);
        append_json_line(path_str, &json_line("a/x", 1.0, 2.0, 3.0));
        append_json_line(path_str, &json_line("b/y", 4.0, 5.0, 6.0));
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"bench\":\"a/x\""));
        assert!(lines[1].contains("\"median_ns\":5.0"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn iter_batched_times_only_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_function(BenchmarkId::new("batched", 1), |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
