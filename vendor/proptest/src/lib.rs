//! Offline stand-in for the `proptest` crate, implementing the subset the
//! workspace's property tests use: the `proptest!` macro (with optional
//! `proptest_config` inner attribute), integer-range / tuple / `Just` /
//! `any` strategies, `proptest::collection::vec`, `Strategy::prop_map`,
//! `prop_oneof!`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Cases are sampled deterministically (the RNG is seeded from the test's
//! module path and name), so a failure is always reproducible by re-running
//! the test. There is no shrinking: the failing inputs are printed instead.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sentinel error payload used by [`prop_assume!`] to reject a case without
/// failing the test.
pub const ASSUME_REJECTED: &str = "__proptest_shim_assume_rejected__";

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values for one test case (mirrors `proptest::strategy::Strategy`).
pub trait Strategy {
    type Value: fmt::Debug;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy producing a constant (mirrors `proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy sampling any value of `T` (mirrors `proptest::arbitrary::any`,
/// restricted to types our rand shim can sample uniformly).
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: rand::Standard + fmt::Debug>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: rand::Standard + fmt::Debug> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Uniform choice between boxed alternative strategies (the expansion of
/// [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: fmt::Debug> Union<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

pub mod sample {
    use super::{fmt, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Uniform choice from a fixed list of values (mirrors
    /// `proptest::sample::select`).
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    pub fn select<T: Clone + fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone + fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

pub mod option {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// `Option` wrapper: `None` half the time (mirrors `proptest::option::of`).
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

pub mod collection {
    use super::{fmt, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length bounds for [`vec()`] (mirrors `proptest::collection::SizeRange`).
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    /// Strategy producing vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Derives the per-test RNG. Seeded by the test path so each property walks
/// its own deterministic sequence.
pub fn runner_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// `proptest!` — runs each contained `#[test]` function `cases` times with
/// freshly sampled inputs. Failure messages include the sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::runner_rng(concat!(module_path!(), "::", stringify!($name)));
                let mut ran: u32 = 0;
                let mut attempts: u32 = 0;
                while ran < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(20).max(1_000),
                        "prop_assume! rejected too many cases in {}",
                        stringify!($name),
                    );
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)*
                    // Render inputs up front: the body takes them by value.
                    let inputs_repr = ::std::format!("{:?}", ($(&$arg,)*));
                    let outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => ran += 1,
                        Err(message) if message == $crate::ASSUME_REJECTED => {}
                        Err(message) => panic!(
                            "proptest case {}/{} failed: {}\ninputs: {}",
                            ran + 1,
                            config.cases,
                            message,
                            inputs_repr
                        ),
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name($($arg in $strat),*) $body )*
        }
    };
}

/// `prop_assert!` — like `assert!` but reports the failing case with its
/// sampled inputs instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `prop_assert_eq!` — equality variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                ::std::format!($($fmt)+)
            ));
        }
    }};
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// `prop_assert_ne!` — inequality variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// `prop_assume!` — reject the current case (it is re-drawn, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::ASSUME_REJECTED.to_string());
        }
    };
}

/// `prop_oneof!` — uniform choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $({
                let boxed: ::std::boxed::Box<dyn $crate::Strategy<Value = _>> =
                    ::std::boxed::Box::new($arm);
                boxed
            }),+
        ])
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 0u64..100, y in -5i64..=5) {
            prop_assert!(x < 100);
            prop_assert!((-5..=5).contains(&y), "y out of range: {y}");
        }

        #[test]
        fn tuples_and_vecs_compose(pairs in crate::collection::vec((0u8..8, 0u8..8), 0..20)) {
            prop_assert!(pairs.len() < 20);
            for (a, b) in pairs {
                prop_assert!(a < 8 && b < 8);
            }
        }

        #[test]
        fn prop_map_transforms(n in (0u32..10).prop_map(|v| v * 2)) {
            prop_assert!(n % 2 == 0 && n < 20);
        }

        #[test]
        fn oneof_hits_every_arm(v in prop_oneof![Just(1u8), Just(2u8), 3u8..4]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn any_samples(x in any::<u64>()) {
            let _ = x;
            prop_assert!(true);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u8..2) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }

    #[test]
    fn runner_rng_is_deterministic() {
        use rand::RngCore;
        let a = crate::runner_rng("t").next_u64();
        let b = crate::runner_rng("t").next_u64();
        assert_eq!(a, b);
    }
}
