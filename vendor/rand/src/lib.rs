//! Offline stand-in for the `rand` crate, implementing exactly the 0.8 API
//! subset this workspace uses: [`RngCore`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`], [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64) and [`rngs::mock::StepRng`].
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors this shim as a path dependency. It is deterministic and
//! adequate for tests, benches and the paper's experiments; it is NOT the
//! upstream `rand` crate and makes no claim of cryptographic quality beyond
//! what the schemes themselves derive from their own PRFs.

use std::fmt;

/// Error type mirroring `rand::Error`; the shim's generators are infallible,
/// so this is only ever constructed by downstream `RngCore` implementors.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// Core trait for random number generators (object-safe, mirrors
/// `rand::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Types producible by [`Rng::gen`] (the shim's analogue of sampling from
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: low bits of some generators are weaker.
        rng.next_u32() & 0x8000_0000 != 0
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[lo, hi)` (caller guarantees `lo < hi`).
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// The largest representable value, for turning `..=` into `..` safely.
    fn successor_saturating(self) -> Self;
    fn is_max(self) -> bool;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as $u).wrapping_sub(lo as $u);
                debug_assert!(span > 0, "gen_range called with empty range");
                // Rejection sampling over the widened type to avoid modulo bias.
                let span = span as u128;
                let zone = u128::from(u64::MAX) - (u128::from(u64::MAX) + 1) % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v <= zone {
                        return ((lo as $u).wrapping_add((v % span) as $u)) as $t;
                    }
                }
            }
            fn successor_saturating(self) -> Self {
                self.checked_add(1).unwrap_or(self)
            }
            fn is_max(self) -> bool {
                self == <$t>::MAX
            }
        }
    )*};
}
impl_sample_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize, u128 => u128,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize, i128 => u128
);

/// Range argument for [`Rng::gen_range`] (mirrors `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range called with empty range");
        if hi.is_max() {
            if lo == hi {
                return lo;
            }
            // [lo, MAX]: sample [lo-as-half-open) then widen by accepting MAX
            // via an extra coin flip only when the half-open draw hits lo.
            // Simpler: draw from [lo, MAX) and occasionally return MAX.
            let v = T::sample_half_open(lo, hi, rng);
            // 1-in-span chance to map onto MAX keeps the distribution close
            // enough to uniform for workload generation purposes.
            if bool::sample_standard(rng) && v == lo {
                return hi;
            }
            return v;
        }
        T::sample_half_open(lo, hi.successor_saturating(), rng)
    }
}

/// Extension trait with the convenience sampling methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Trait for seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, the same construction upstream rand uses.
        let mut sm = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256++ (Blackman & Vigna).
    /// Not the upstream `StdRng` (ChaCha12), but deterministic, fast, and
    /// statistically strong enough for workload generation and tests.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }

    pub mod mock {
        use super::super::RngCore;

        /// Mock generator returning an arithmetic sequence (mirrors
        /// `rand::rngs::mock::StepRng`).
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let bytes = self.next_u64().to_le_bytes();
                    let n = chunk.len();
                    chunk.copy_from_slice(&bytes[..n]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs, (0..16).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let neg = rng.gen_range(-50i64..=-40);
            assert!((-50..=-40).contains(&neg));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn f64_gen_lies_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = StepRng::new(0, 1);
        assert_eq!(rng.next_u64(), 0);
        assert_eq!(rng.next_u64(), 1);
        let mut buf = [0u8; 4];
        rng.fill_bytes(&mut buf);
        assert_eq!(buf, 2u32.to_le_bytes());
    }

    #[test]
    fn fill_bytes_handles_ragged_tails() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
