//! Attack lab — why the class choice matters.
//!
//! Encrypts the same Zipf-skewed constant column under PROB, DET and OPE
//! and runs the passive attacks of the threat model against each,
//! illustrating the security rows of Fig. 1 and why Definition 6 always
//! picks the *highest* class that still preserves the distance.
//!
//! Run: `cargo run --release --example attack_lab`

use dpe::attacks::{frequency_attack, sorting_attack};
use dpe::crypto::kdf::SlotLabel;
use dpe::crypto::scheme::SymmetricScheme;
use dpe::crypto::{DetScheme, MasterKey, ProbScheme};
use dpe::ope::{OpeDomain, OpeScheme};
use dpe::workload::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0xA77);
    let master = MasterKey::from_bytes([0x3C; 32]);

    // A skewed column of 1,000 constants over 15 hot values — the shape
    // that query-log constants (and the attacker's auxiliary knowledge)
    // actually have.
    let zipf = Zipf::new(15, 1.1);
    let plain: Vec<i64> = (0..1000)
        .map(|_| 10_000 + zipf.sample(&mut rng) as i64 * 111)
        .collect();
    let truth: Vec<String> = plain.iter().map(|v| v.to_string()).collect();
    let mut aux_counts: std::collections::BTreeMap<String, usize> = Default::default();
    for t in &truth {
        *aux_counts.entry(t.clone()).or_default() += 1;
    }
    let aux: Vec<(String, usize)> = aux_counts.into_iter().collect();

    println!("column: 1000 Zipf-skewed constants, 15 distinct values\n");
    println!(
        "{:<28} {:>18} {:>18}",
        "scheme (class)", "frequency attack", "sorting attack"
    );

    // PROB — randomized AES-CTR.
    let prob = ProbScheme::new(&SlotLabel::Constant("lab").derive(&master));
    let cts: Vec<String> = plain
        .iter()
        .map(|v| prob.encrypt(&v.to_be_bytes(), &mut rng).to_hex())
        .collect();
    let freq = frequency_attack(&cts, &truth, &aux);
    println!(
        "{:<28} {:>18} {:>18}",
        "PROB (rand. AES-CTR)",
        freq.to_string(),
        "no order to sort"
    );

    // DET — SIV.
    let det = DetScheme::new(&SlotLabel::Constant("lab").derive(&master));
    let cts: Vec<String> = plain
        .iter()
        .map(|v| det.encrypt(&v.to_be_bytes(), &mut rng).to_hex())
        .collect();
    let freq = frequency_attack(&cts, &truth, &aux);
    println!(
        "{:<28} {:>18} {:>18}",
        "DET (SIV)",
        freq.to_string(),
        "order hidden"
    );

    // OPE — order-preserving.
    let ope = OpeScheme::new(
        &SlotLabel::Constant("lab").derive(&master),
        OpeDomain::new(0, 1 << 20),
    );
    let cts: Vec<u128> = plain
        .iter()
        .map(|&v| ope.encrypt(v as u64).unwrap())
        .collect();
    let sort = sorting_attack(&cts, &plain, &plain);
    println!(
        "{:<28} {:>18} {:>18}",
        "OPE (range bisection)",
        "(inherits DET)",
        sort.to_string()
    );

    println!(
        "\nReading: PROB resists both attacks; DET leaks value frequencies; OPE additionally\n\
         hands the attacker the full order — with known plaintext distribution the sorting\n\
         attack recovers everything. Definition 6 therefore never picks a lower class than\n\
         the distance measure forces (Table I), and the paper's access-area scheme pushes\n\
         aggregate-only attributes all the way up to PROB."
    );
}
