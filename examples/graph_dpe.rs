//! KIT-DPE beyond SQL: the graph case study, end-to-end.
//!
//! The paper claims its procedure works "for arbitrary data and distance
//! measures". This example runs all four steps on labelled graphs —
//! deriving the case-study table, encrypting a corpus, verifying
//! Definition 1 pairwise, and clustering the encrypted graphs with results
//! identical to plaintext. It also builds co-access graphs straight from an
//! (encrypted) SQL query log, composing the two case studies.
//!
//! Run: `cargo run --release --example graph_dpe`

use dpe::crypto::MasterKey;
use dpe::distance::DistanceMatrix;
use dpe::graphdpe::{
    coaccess_graph, derive_table, verify_graph_dpe, DegreeSequenceDistance, DetGraphEncryptor,
    EdgeJaccard, Graph, GraphDistance, GraphWorkload, ProbGraphEncryptor, VertexJaccard,
};
use dpe::mining::{adjusted_rand_index, kmedoids};
use dpe::sql::parse_query;

fn main() {
    // Step 2 + 3: the derived case-study table (the graph Table I).
    println!("=== KIT-DPE for graphs: derived measure → notion → class table ===");
    for row in derive_table() {
        println!(
            "  {:<18} {:<28} c = {:<16} EncVertex = {}",
            row.measure,
            row.notion.name(),
            row.notion.characteristic(),
            row.enc_vertex
        );
    }

    // A corpus of graphs in 3 structural communities.
    let mut wl = GraphWorkload::new(7);
    let plain = wl.community_corpus(3, 6, 8);
    let truth = GraphWorkload::community_truth(3, 6);

    // Encrypt under the DET vertex slot (appropriate for the set measures).
    let enc = DetGraphEncryptor::new(&MasterKey::from_bytes([5; 32]));
    let encrypted: Vec<Graph> = plain.iter().map(|g| enc.encrypt_graph(g)).collect();

    println!(
        "\n=== Definition 1, exhaustive over {} graphs ===",
        plain.len()
    );
    for report in [
        verify_graph_dpe(&VertexJaccard, &plain, &encrypted),
        verify_graph_dpe(&EdgeJaccard, &plain, &encrypted),
        verify_graph_dpe(&DegreeSequenceDistance, &plain, &encrypted),
    ] {
        println!("  {report}");
        assert!(report.preserved);
    }

    // Negative control: per-graph PROB pseudonyms keep only the label-free
    // measure — exactly what the derived table predicts.
    let mut prob = ProbGraphEncryptor::from_seed(11);
    let prob_encrypted: Vec<Graph> = plain.iter().map(|g| prob.encrypt_graph(g)).collect();
    println!("\n=== Negative control: PROB pseudonyms ===");
    for report in [
        verify_graph_dpe(&VertexJaccard, &plain, &prob_encrypted),
        verify_graph_dpe(&DegreeSequenceDistance, &plain, &prob_encrypted),
    ] {
        println!("  {report}");
    }

    // The headline: clustering the encrypted corpus recovers the same
    // communities as clustering the plaintext corpus.
    let measure = EdgeJaccard;
    let m_plain =
        DistanceMatrix::from_fn(plain.len(), |i, j| measure.distance(&plain[i], &plain[j]));
    let m_enc = DistanceMatrix::from_fn(encrypted.len(), |i, j| {
        measure.distance(&encrypted[i], &encrypted[j])
    });
    let plain_clusters = kmedoids(&m_plain, 3);
    let enc_clusters = kmedoids(&m_enc, 3);
    assert_eq!(plain_clusters.assignment, enc_clusters.assignment);
    println!(
        "\nk-medoids on ciphertext == plaintext: true; ARI vs ground truth = {:.2}",
        adjusted_rand_index(&enc_clusters.assignment, &truth)
    );

    // Composition with the SQL case study: co-access graphs from a log.
    let log: Vec<_> = [
        "SELECT ra, dec FROM photoobj WHERE objid = 42",
        "SELECT z FROM specobj WHERE z > 1500 AND class = 'QSO'",
    ]
    .iter()
    .map(|s| parse_query(s).expect("valid SQL"))
    .collect();
    println!("\n=== Co-access graphs from the SQL log ===");
    for (q, g) in log.iter().zip(log.iter().map(coaccess_graph)) {
        println!("  {q}  →  {g}");
    }
}
