//! Result-distance mining via CryptDB (Table I row 3).
//!
//! Query-result distance needs the *database content* as shared
//! information: the owner CryptDB-encrypts the database and the log; the
//! provider executes rewritten queries over onion columns and measures
//! Jaccard distances between encrypted result-tuple sets. This example also
//! shows the transparent end-to-end path (plaintext in, plaintext out
//! through the proxy).
//!
//! Run: `cargo run --release --example cryptdb_result_distance`

use dpe::core::dpe::verify_dpe;
use dpe::core::scheme::{QueryEncryptor, ResultDpe};
use dpe::cryptdb::column::CryptDbConfig;
use dpe::crypto::MasterKey;
use dpe::distance::{QueryDistance, ResultDistance};
use dpe::sql::parse_query;
use dpe::workload::{generate_database, sky_catalog, sky_domains, LogConfig, LogGenerator};

fn main() {
    // The owner's confidential database and query log.
    let plain_db = generate_database(80, 0xCAFE);
    let log = LogGenerator::generate(&LogConfig::result_safe(30, 0xCAFE));

    let master = MasterKey::from_bytes([0x2B; 32]);
    let config = CryptDbConfig::default().with_join_group("obj", &["objid", "bestobjid"]);
    let mut dpe =
        ResultDpe::new(&plain_db, &sky_catalog(), &sky_domains(), &config, &master).expect("setup");

    // One-time onion adjustment for the log (Definition 4 needs the
    // provider to see deterministic result tuples).
    dpe.prepare_for_log(&log).expect("adjustment");

    // Encrypt the log; the provider sees only rewritten queries.
    let encrypted = dpe.encrypt_log(&log).expect("rewriting");
    println!("plaintext : {}", log[0]);
    println!("rewritten : {}\n", encrypted[0]);

    // Provider-side distance computation over encrypted results:
    let d_plain = ResultDistance::new(&plain_db);
    let d_enc = ResultDistance::new(dpe.encrypted_database());
    let sample = d_enc
        .distance(&encrypted[0], &encrypted[1])
        .expect("distance");
    println!(
        "provider: d_result(Enc Q0, Enc Q1) = {sample:.4} (owner's value: {:.4})",
        d_plain.distance(&log[0], &log[1]).unwrap()
    );

    let report = verify_dpe(&log, &encrypted, &d_plain, &d_enc).expect("verification");
    println!("Definition 1 over all pairs: {}\n", report.verdict());
    assert!(report.preserved);

    // Bonus: the same proxy serves transparent ad-hoc queries, including a
    // Paillier-folded aggregate (the HOM onion).
    let q = parse_query("SELECT SUM(z), AVG(z) FROM specobj WHERE z > 1000000").unwrap();
    let result = dpe.proxy_mut().execute(&q).expect("HOM execution");
    println!(
        "transparent SUM/AVG through the proxy: {:?}",
        result.rows[0]
    );
}
