//! Streaming owner upload: the outsourcing model's write path at batch
//! throughput.
//!
//! A data owner continuously produces records — confidential numeric
//! values destined for a Paillier (HOM) column, plus the query log the
//! provider mines over token-DPE. This example runs the whole PR 5 ingest
//! pipeline:
//!
//! 1. the owner's [`BatchEncryptor`] encrypts the value stream through a
//!    [`RandomnessPool`] of precomputed `r^n` factors (refilled across
//!    scoped worker threads) and a fixed-base table, measuring the
//!    speedup over one-at-a-time encryption;
//! 2. the encrypted query log is uploaded chunk by chunk through
//!    `Server::ingest_stream`, the producer (owner-side encryption)
//!    overlapping the provider-side packed-matrix extension;
//! 3. the provider answers mining queries over the freshly streamed
//!    store, spot-checked bit-identical against a plaintext twin.
//!
//! Run: `cargo run --release --example streaming_owner_upload`

use dpe::bignum::BigUint;
use dpe::core::scheme::{QueryEncryptor, TokenDpe};
use dpe::crypto::MasterKey;
use dpe::distance::TokenDistance;
use dpe::paillier::{BatchEncryptor, KeyPair, TEST_PRIME_BITS};
use dpe::server::{Request, Server};
use dpe::workload::{LogConfig, LogGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const VALUES: usize = 96;
const LOG: usize = 72;
const CHUNK: usize = 12;

fn main() {
    let mut rng = StdRng::seed_from_u64(0x5EED);

    // ── 1. The owner's value stream through the batched Paillier engine.
    let keys = KeyPair::generate(TEST_PRIME_BITS, &mut rng);
    let values: Vec<BigUint> = (0..VALUES as u64)
        .map(|v| BigUint::from(v * 31 + 7))
        .collect();

    let start = Instant::now();
    let baseline: Vec<_> = values
        .iter()
        .map(|m| keys.public().encrypt(m, &mut rng).unwrap())
        .collect();
    let single = start.elapsed();

    let engine = BatchEncryptor::fixed_base(keys.public(), &mut rng);
    engine.pool().refill_parallel(VALUES / 2, 4, &mut rng);
    let start = Instant::now();
    let mut uploaded = 0usize;
    engine
        .encrypt_stream(values.iter().cloned(), CHUNK, 4, &mut rng, |chunk| {
            uploaded += chunk.len();
        })
        .expect("owner-side encryption");
    let batched = start.elapsed();
    let stats = engine.pool().stats();
    println!(
        "owner: {VALUES} values — single-call {:.1} ms, batched stream {:.1} ms ({:.1}x); \
         pool precomputed {} / served {} / misses {}",
        single.as_secs_f64() * 1e3,
        batched.as_secs_f64() * 1e3,
        single.as_secs_f64() / batched.as_secs_f64(),
        stats.precomputed,
        stats.served,
        stats.misses
    );
    assert_eq!(uploaded, VALUES);
    assert_eq!(baseline.len(), VALUES);
    for (m, ct) in values.iter().zip(baseline.iter().take(4)) {
        assert_eq!(&keys.private().decrypt(ct).unwrap(), m);
    }

    // ── 2. The encrypted query log streams into the provider's shard,
    //       owner-side encryption overlapping server-side ingestion.
    let log = LogGenerator::generate(&LogConfig {
        queries: LOG,
        seed: 0x10C,
        ..Default::default()
    });
    let provider = Server::builder(TokenDistance)
        .shards(1)
        .cache_capacity(64)
        .build();
    let oracle = Server::builder(TokenDistance)
        .shards(1)
        .cache_capacity(0)
        .build();
    oracle.ingest(0, &log).expect("plaintext twin");

    let mut scheme = TokenDpe::new(&MasterKey::from_bytes([0x7B; 32]));
    let start = Instant::now();
    let chunks = log
        .chunks(CHUNK)
        .map(move |chunk| scheme.encrypt_log(chunk).expect("encrypt chunk"));
    let streamed = provider.ingest_stream(0, chunks).expect("streamed upload");
    println!(
        "provider: {streamed} encrypted queries streamed in {:.1} ms \
         ({} chunks, epoch {})",
        start.elapsed().as_secs_f64() * 1e3,
        LOG.div_ceil(CHUNK),
        provider.shard_epoch(0).unwrap()
    );

    // ── 3. Mining over the streamed ciphertext store matches the
    //       plaintext twin bit for bit (Definition 1, end to end).
    let requests = [
        Request::Knn {
            shard: 0,
            item: 5,
            k: 4,
        },
        Request::Lof {
            shard: 0,
            min_pts: 3,
        },
        Request::Outliers {
            shard: 0,
            p: 0.6,
            d: 0.4,
        },
    ];
    let enc_answers = provider.serve_batch(&requests, 2);
    for (req, enc) in requests.iter().zip(&enc_answers) {
        let plain = oracle.serve_one_uncached(req).expect("oracle");
        assert!(
            enc.as_ref().expect("served").bits_eq(&plain),
            "mismatch for {req:?}"
        );
    }
    println!(
        "provider: {} mining answers bit-identical to the plaintext twin ✓",
        enc_answers.len()
    );
}
