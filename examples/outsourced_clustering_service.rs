//! Outsourced clustering as a service: the provider serves whole-shard
//! clustering — DBSCAN, k-medoids, hierarchical cuts at every granularity,
//! frequent feature itemsets — over DPE-encrypted tenant logs, with the
//! dendrogram built **once** per (shard, epoch, linkage) and reused for
//! every cut.
//!
//! The scenario: each tenant's analysts want the same encrypted log
//! clustered at many granularities (k = 2, 3, 4, …) — the classic
//! dendrogram use case. Naively that is one O(n³) agglomeration per
//! request; the serving engine's plan cache pays it once and answers the
//! whole sweep from the cached merge list. A streaming ingest then bumps
//! the epoch: the next cut lazily drops the stale plan and rebuilds over
//! the grown store, and a plaintext twin confirms every answer stayed
//! bit-identical throughout.
//!
//! Run: `cargo run --release --example outsourced_clustering_service`

use dpe::core::scheme::{QueryEncryptor, TokenDpe};
use dpe::crypto::MasterKey;
use dpe::distance::TokenDistance;
use dpe::mining::Linkage;
use dpe::server::{Request, Response, Server};
use dpe::workload::{LogConfig, LogGenerator};
use std::time::Instant;

const SHARDS: usize = 3;
const PER_SHARD: usize = 48;
const CUT_SWEEP: usize = 12;

fn main() {
    // 1. Tenants encrypt their logs; the provider ingests ciphertexts
    //    only. The plaintext twin exists purely to verify the DPE claim.
    let mut scheme = TokenDpe::new(&MasterKey::from_bytes([0x5C; 32]));
    let provider = Server::builder(TokenDistance)
        .shards(SHARDS)
        .cache_capacity(256)
        .build();
    let twin = Server::builder(TokenDistance)
        .shards(SHARDS)
        .cache_capacity(0)
        .build();
    for shard in 0..SHARDS {
        let log = LogGenerator::generate(&LogConfig {
            queries: PER_SHARD,
            seed: 0xC1A5 + shard as u64,
            ..Default::default()
        });
        provider
            .ingest(shard, &scheme.encrypt_log(&log).expect("encrypt"))
            .expect("ingest ciphertexts");
        twin.ingest(shard, &log).expect("ingest plaintexts");
    }
    println!("{SHARDS} tenants × {PER_SHARD} encrypted queries ingested");

    // 2. The analyst workload: every tenant asks for a full granularity
    //    sweep under its house linkage, plus DBSCAN / k-medoids / itemset
    //    views of the same store.
    let linkages = [Linkage::Complete, Linkage::Single, Linkage::Average];
    let mut requests = Vec::new();
    for shard in 0..SHARDS {
        for k in 1..=CUT_SWEEP {
            requests.push(Request::Hierarchical {
                shard,
                linkage: linkages[shard % 3],
                k,
            });
        }
        requests.push(Request::Dbscan {
            shard,
            eps: 0.3,
            min_pts: 3,
        });
        requests.push(Request::KMedoids { shard, k: 4 });
        requests.push(Request::FrequentItemsets {
            shard,
            min_support: PER_SHARD / 6,
        });
    }

    let start = Instant::now();
    let answers = provider.serve_batch(&requests, SHARDS);
    let elapsed = start.elapsed();
    let plans = provider.stats().plans;
    println!(
        "\nserved {} clustering requests in {elapsed:.2?}: \
         {} dendrogram builds amortized over {} plan hits",
        requests.len(),
        plans.builds,
        plans.hits
    );
    assert_eq!(
        plans.builds as usize, SHARDS,
        "one plan per (shard, linkage) must cover the whole sweep"
    );

    // 3. The DPE guarantee. Distance-based answers (labels, medoids, cost
    //    bits) are bit-identical. Frequent itemsets are the c-equivalence
    //    story instead: token-DPE *renames* features bijectively, so the
    //    provider finds the same pattern structure — sizes and supports —
    //    over ciphertext items it cannot read.
    for (request, answer) in requests.iter().zip(&answers) {
        let expect = twin.serve_one_uncached(request).expect("twin");
        let answer = answer.as_ref().expect("response");
        if let (Response::Itemsets(enc), Response::Itemsets(plain)) = (answer, &expect) {
            let shape = |sets: &[(Vec<String>, usize)]| {
                let mut s: Vec<(usize, usize)> = sets
                    .iter()
                    .map(|(items, sup)| (items.len(), *sup))
                    .collect();
                s.sort_unstable();
                s
            };
            assert_eq!(
                shape(enc),
                shape(plain),
                "encrypted itemset shape diverged on {request:?}"
            );
        } else {
            assert!(
                answer.bits_eq(&expect),
                "encrypted clustering diverged on {request:?}"
            );
        }
    }
    println!(
        "DPE check: all {} responses match plaintext clustering \
         (bit-identical; itemsets shape-identical under feature renaming) ✓",
        requests.len()
    );

    // 4. A fresh encrypted batch streams in on tenant 0 — the epoch bumps,
    //    and the *next* cut rebuilds its plan against the grown store.
    let update = LogGenerator::generate(&LogConfig {
        queries: 6,
        seed: 0xFEED,
        ..Default::default()
    });
    provider
        .ingest(0, &scheme.encrypt_log(&update).expect("encrypt"))
        .expect("ingest update");
    twin.ingest(0, &update).expect("ingest update");
    let recut = Request::Hierarchical {
        shard: 0,
        linkage: linkages[0],
        k: 3,
    };
    let post = &provider.serve_batch(std::slice::from_ref(&recut), 1)[0];
    let post_plans = provider.stats().plans;
    println!(
        "after streaming ingest: epoch {} → plan invalidations {}, builds {}",
        provider.shard_epoch(0).unwrap(),
        post_plans.invalidations,
        post_plans.builds
    );
    assert_eq!(post_plans.invalidations, 1, "stale plan dropped lazily");

    // The post-ingest recut must match the twin's view of the grown store.
    let expect_post = twin.serve_one_uncached(&recut).expect("twin");
    assert!(post.as_ref().expect("response").bits_eq(&expect_post));
    println!("post-ingest recut bit-identical to plaintext clustering ✓");
}
