//! Outsourced clustering — the paper's §I motivation end-to-end.
//!
//! A data owner wants a service provider to cluster its SQL query log
//! (e.g. to find user-interest groups) without revealing table names,
//! attribute names or constants. The owner encrypts the log with the
//! structure-distance DPE scheme (DET names, PROB constants — the most
//! secure row of Table I), ships it, and the provider runs k-medoids and
//! DBSCAN on the ciphertext log. The clusters come back identical to what
//! the owner would have computed locally.
//!
//! Run: `cargo run --release --example outsourced_clustering`

use dpe::core::scheme::{QueryEncryptor, StructuralDpe};
use dpe::core::verify::mining_agreement;
use dpe::crypto::MasterKey;
use dpe::distance::{DistanceMatrix, MatrixBuilder, StructureDistance};
use dpe::mining::{dbscan, kmedoids, DbscanConfig, DbscanLabel, OutlierConfig};
use dpe::workload::{LogConfig, LogGenerator};

fn main() {
    // --- data owner side -------------------------------------------------
    let log = LogGenerator::generate(&LogConfig {
        queries: 80,
        seed: 0xC1,
        ..Default::default()
    });
    println!(
        "owner: generated a log of {} queries, e.g.\n  {}",
        log.len(),
        log[0]
    );

    let master = MasterKey::from_bytes([0x07; 32]);
    let mut scheme = StructuralDpe::new(&master, 1);
    let encrypted = scheme.encrypt_log(&log).expect("encryption");
    println!(
        "owner: encrypted the log; first item:\n  {}\n",
        encrypted[0]
    );

    // --- service provider side (sees only `encrypted`) -------------------
    // The log arrives in batches; the provider grows the packed distance
    // matrix incrementally, paying only for the new pairs each time.
    let mut stream = MatrixBuilder::new();
    for batch in encrypted.chunks(20) {
        stream.extend(batch, &StructureDistance).expect("distances");
        println!(
            "provider: batch of {} encrypted queries arrived — matrix now {}×{} ({} packed cells)",
            batch.len(),
            stream.len(),
            stream.len(),
            stream.matrix().packed_len()
        );
    }
    let (_, matrix) = stream.into_parts();
    // A batch provider would compute the same matrix in parallel instead:
    let parallel =
        DistanceMatrix::compute_parallel(&encrypted, &StructureDistance, 4).expect("distances");
    assert!(
        matrix.identical(&parallel),
        "incremental and parallel paths agree bit-for-bit"
    );
    let clusters = kmedoids(&matrix, 4);
    let density = dbscan(
        &matrix,
        DbscanConfig {
            eps: 0.45,
            min_pts: 3,
        },
    );
    let noise = density
        .iter()
        .filter(|l| matches!(l, DbscanLabel::Noise))
        .count();
    println!(
        "provider: k-medoids found medoids at encrypted queries {:?}",
        clusters.medoids
    );
    println!(
        "provider: DBSCAN found {} clusters and {} noise queries",
        density
            .iter()
            .filter_map(|l| match l {
                DbscanLabel::Cluster(c) => Some(*c),
                DbscanLabel::Noise => None,
            })
            .max()
            .map_or(0, |m| m + 1),
        noise
    );

    // --- verification (owner audits the protocol) -------------------------
    let local = DistanceMatrix::compute(&log, &StructureDistance).expect("local distances");
    let agreement = mining_agreement(
        &local,
        &matrix,
        4,
        DbscanConfig {
            eps: 0.45,
            min_pts: 3,
        },
        OutlierConfig { p: 0.7, d: 0.6 },
    );
    println!("\naudit: k-medoids ARI = {:.3}", agreement.kmedoids_ari);
    println!("audit: DBSCAN ARI    = {:.3}", agreement.dbscan_ari);
    println!(
        "audit: outlier sets identical = {}",
        agreement.outliers_identical
    );
    assert!(
        agreement.all_identical,
        "DPE guarantees identical mining results"
    );
    println!("\nThe provider computed exactly the clustering the owner would have — without the plaintext.");
}
