//! Outsourced serving: a service provider answers concurrent mining
//! queries over DPE-encrypted tenant stores — without ever seeing a
//! plaintext — at batch-engine throughput.
//!
//! Four tenants encrypt their query logs under token-DPE and upload the
//! ciphertexts. Eight client threads then fire a Zipf-skewed mix of
//! kNN / range / LOF / outlier requests at the provider's `dpe-server`,
//! which coalesces them into per-shard batches on work-stealing workers
//! and caches hot responses. A spot check against plaintext-side mining
//! confirms the paper's claim end-to-end: every encrypted answer is
//! bit-identical.
//!
//! Run: `cargo run --release --example outsourced_serving`

use dpe::core::scheme::{QueryEncryptor, TokenDpe};
use dpe::crypto::MasterKey;
use dpe::distance::TokenDistance;
use dpe::server::{Request, Server};
use dpe::workload::{LogConfig, LogGenerator, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const SHARDS: usize = 4;
const CLIENTS: usize = 8;
const PER_CLIENT: usize = 60;
const PER_SHARD: usize = 64;

fn main() {
    // 1. Each tenant encrypts its confidential query log and uploads only
    //    the ciphertexts. The provider's server ingests them per shard via
    //    the incremental matrix path; a plaintext twin server exists here
    //    purely to verify the DPE claim.
    let mut scheme = TokenDpe::new(&MasterKey::from_bytes([0x7B; 32]));
    let provider = Server::builder(TokenDistance)
        .shards(SHARDS)
        .cache_capacity(256)
        .build();
    let oracle = Server::builder(TokenDistance)
        .shards(SHARDS)
        .cache_capacity(0)
        .build();
    for shard in 0..SHARDS {
        let log = LogGenerator::generate(&LogConfig {
            queries: PER_SHARD,
            seed: 0x0D5E + shard as u64,
            ..Default::default()
        });
        let encrypted = scheme.encrypt_log(&log).expect("encryption");
        provider
            .ingest(shard, &encrypted)
            .expect("ingest ciphertexts");
        oracle.ingest(shard, &log).expect("ingest plaintexts");
        println!(
            "tenant {shard}: {} encrypted queries ingested (epoch {})",
            encrypted.len(),
            provider.shard_epoch(shard).unwrap()
        );
    }

    // 2. Eight clients submit Zipf-skewed request streams concurrently —
    //    hot tenants, hot items, repeated queries.
    let start = Instant::now();
    let mut submissions = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let provider = &provider;
                scope.spawn(move || {
                    let shard_zipf = Zipf::new(SHARDS, 1.0);
                    let item_zipf = Zipf::new(PER_SHARD, 1.0);
                    let kind_zipf = Zipf::new(3, 1.0);
                    let mut rng = StdRng::seed_from_u64(0xC1 + client as u64);
                    (0..PER_CLIENT)
                        .map(|_| {
                            let shard = shard_zipf.sample(&mut rng);
                            let item = item_zipf.sample(&mut rng);
                            let req = match kind_zipf.sample(&mut rng) {
                                0 => Request::Knn { shard, item, k: 5 },
                                1 => Request::Range {
                                    shard,
                                    item,
                                    radius: 0.35,
                                },
                                _ => Request::Lof { shard, min_pts: 4 },
                            };
                            (provider.submit(req.clone()).expect("submit"), req)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            submissions.extend(h.join().expect("client thread"));
        }
    });

    // 3. One drain answers everything pending: whole per-shard queues are
    //    coalesced into single-lock batches on 4 work-stealing workers.
    let results = provider.drain(4);
    let elapsed = start.elapsed();
    let total = results.len();
    assert_eq!(total, CLIENTS * PER_CLIENT);

    let cache = provider.stats().cache;
    let sched = provider.stats().scheduler;
    println!(
        "\nserved {total} requests from {CLIENTS} clients in {:.2?} \
         ({:.0} req/s)",
        elapsed,
        total as f64 / elapsed.as_secs_f64()
    );
    println!(
        "cache    : {} hits / {} misses — {:.0}% of repeated encrypted \
         queries never recomputed",
        cache.hits,
        cache.misses,
        100.0 * cache.hit_rate()
    );
    println!(
        "scheduler: {} batches for {} requests ({:.1} requests per lock \
         acquisition), {} steals",
        sched.batches,
        sched.served,
        sched.served as f64 / sched.batches.max(1) as f64,
        sched.steals
    );

    // 4. The DPE guarantee, spot-checked: answers computed on ciphertexts
    //    are bit-identical to plaintext-side mining.
    let mut checked = 0;
    for (ticket, request) in submissions.iter().step_by(17) {
        let (_, encrypted_answer) = results
            .iter()
            .find(|(t, _)| t == ticket)
            .expect("ticket answered");
        let plaintext_answer = oracle.serve_one_uncached(request).expect("oracle");
        assert!(
            encrypted_answer
                .as_ref()
                .expect("response")
                .bits_eq(&plaintext_answer),
            "encrypted serving diverged on {request:?}"
        );
        checked += 1;
    }
    println!(
        "\nDPE check: {checked}/{total} sampled responses bit-identical to \
         plaintext mining ✓"
    );
}
