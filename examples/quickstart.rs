//! Quickstart: encrypt a query log so that token-based distances — and
//! therefore any distance-based mining — survive encryption.
//!
//! Run: `cargo run --release --example quickstart`

use dpe::core::dpe::verify_dpe;
use dpe::core::scheme::{QueryEncryptor, TokenDpe};
use dpe::crypto::MasterKey;
use dpe::distance::{DistanceMatrix, QueryDistance, TokenDistance};
use dpe::sql::parse_query;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. The data owner's query log — the confidential input.
    let log: Vec<_> = [
        "SELECT ra, dec FROM photoobj WHERE objid = 42",
        "SELECT ra, dec FROM photoobj WHERE objid = 43",
        "SELECT objid FROM photoobj WHERE class = 'STAR' AND rmag < 2100",
        "SELECT objid FROM photoobj WHERE class = 'QSO' AND rmag < 2100",
        "SELECT COUNT(*) FROM specobj",
    ]
    .iter()
    .map(|s| parse_query(s).expect("valid SQL"))
    .collect();

    // 2. Derive the DPE scheme for token distance (Table I row 1:
    //    DET for relations, attributes and constants) from a master key.
    let mut rng = StdRng::seed_from_u64(42);
    let master = MasterKey::random(&mut rng);
    let mut scheme = TokenDpe::new(&master);

    // 3. Encrypt item-wise: Enc(Q) replaces names and constants only
    //    (the paper's Example 4); structure stays analyzable.
    let encrypted = scheme.encrypt_log(&log).expect("encryption");
    println!("plaintext : {}", log[0]);
    println!("encrypted : {}\n", encrypted[0]);

    // 4. The service provider measures distances on ciphertexts…
    let d = TokenDistance;
    for (i, j) in [(0, 1), (0, 2), (2, 3)] {
        let plain_d = d.distance(&log[i], &log[j]).unwrap();
        let enc_d = d.distance(&encrypted[i], &encrypted[j]).unwrap();
        println!("d(Q{i}, Q{j}) plaintext = {plain_d:.4}   encrypted = {enc_d:.4}");
        assert_eq!(plain_d, enc_d, "Definition 1 must hold");
    }

    // 5. …and the full pairwise check (Definition 1, exhaustive):
    let report = verify_dpe(&log, &encrypted, &d, &d).expect("verification");
    println!("\nDefinition 1 check: {}", report.verdict());

    // 6. Distance matrices are bit-identical, so any distance-based mining
    //    algorithm gives the same result on both sides.
    let m_plain = DistanceMatrix::compute(&log, &d).unwrap();
    let m_enc = DistanceMatrix::compute(&encrypted, &d).unwrap();
    println!(
        "distance matrices bit-identical: {}",
        m_plain.identical(&m_enc)
    );
}
