//! The encrypted SQL front door: an analyst speaks SELECT, the provider
//! answers from DPE ciphertexts through the physical-plan executor — and
//! never sees a plaintext identifier.
//!
//! A tenant encrypts its query log under token-DPE and uploads only the
//! ciphertexts. The provider exposes the store as a virtual *pairs* table
//! `pairs(item, anchor, dist)`; the tenant additionally registers a
//! binding whose table/column names are DET-encrypted with the CryptDB
//! onion rewriter, so even the schema words in the SQL text leak nothing.
//! Every SELECT is lowered onto plan ops (range filters from the
//! order-preserving distance-bits encoding, `ORDER BY dist LIMIT k` into a
//! kNN op) and executed by the same pull pipeline that answers native
//! requests. Two differential checks close the loop:
//!
//! 1. the encrypted-identifier SELECT answers bit-identically to its
//!    plaintext spelling;
//! 2. both agree with `dpe-minidb` executing the very same SQL against a
//!    materialized plaintext mirror of the pairs table.
//!
//! Run: `cargo run --release --example encrypted_sql_front_door`

use dpe::core::scheme::{QueryEncryptor, TokenDpe};
use dpe::cryptdb::IdentRewriter;
use dpe::crypto::MasterKey;
use dpe::distance::TokenDistance;
use dpe::server::{dist_literal, Server, SqlTable};
use dpe::sql::analysis::rewrite_query;
use dpe::sql::parse_query;
use dpe::workload::{LogConfig, LogGenerator};

const PER_SHARD: usize = 48;

fn main() {
    // 1. The tenant encrypts its confidential log; the provider ingests
    //    ciphertexts only.
    let mut scheme = TokenDpe::new(&MasterKey::from_bytes([0x5A; 32]));
    let log = LogGenerator::generate(&LogConfig {
        queries: PER_SHARD,
        seed: 0xF00D,
        ..Default::default()
    });
    let encrypted = scheme.encrypt_log(&log).expect("encryption");
    let provider = Server::builder(TokenDistance)
        .shards(1)
        .cache_capacity(64)
        .build();
    provider.ingest(0, &encrypted).expect("ingest ciphertexts");
    println!("provider ingested {PER_SHARD} encrypted queries into shard 0");

    // 2. Two bindings over the same shard: plaintext schema words, and the
    //    CryptDB-DET spelling of the same schema under the tenant's key.
    let mut rewriter = IdentRewriter::new(&MasterKey::from_bytes([0x5A; 32]));
    let plain = SqlTable {
        table: "pairs".into(),
        shard: 0,
        item_col: "item".into(),
        anchor_col: "anchor".into(),
        dist_col: "dist".into(),
    };
    let enc = SqlTable {
        table: rewriter.table_ident("pairs"),
        shard: 0,
        item_col: rewriter.column_ident("item"),
        anchor_col: rewriter.column_ident("anchor"),
        dist_col: rewriter.column_ident("dist"),
    };
    println!(
        "onion schema: pairs -> {}, dist -> {}",
        enc.table, enc.dist_col
    );
    provider.register_sql_table(plain).expect("plain binding");
    provider
        .register_sql_table(enc.clone())
        .expect("enc binding");

    // 3. The analyst's questions, in plain SELECT. Distance constants ride
    //    in the order-preserving bits encoding (provider-visible under the
    //    DPE threat model — distances are what the provider computes on).
    let near = dist_literal(0.4);
    let queries = [
        format!("SELECT item FROM pairs WHERE anchor = 7 AND dist <= {near}"),
        "SELECT item FROM pairs WHERE anchor = 7 ORDER BY dist LIMIT 5".to_string(),
        format!("SELECT item FROM pairs WHERE dist < {near} AND anchor = 12 ORDER BY dist LIMIT 3"),
    ];

    let mirror = provider.plaintext_mirror("pairs").expect("mirror");
    for sql in &queries {
        // The onion rewrite: identifiers encrypted, constants untouched.
        let enc_sql = rewrite_query(&parse_query(sql).expect("parse"), &mut rewriter).to_string();

        let plain_answer = provider.sql(sql).expect("plaintext spelling");
        let enc_answer = provider.sql(&enc_sql).expect("encrypted spelling");
        assert!(
            enc_answer.bits_eq(&plain_answer),
            "encrypted spelling diverged on {sql}"
        );

        // Relational oracle: minidb executes the same SQL on the mirror.
        let rs = dpe::minidb::execute(&mirror, &parse_query(sql).expect("parse"))
            .expect("minidb execute");
        let want = rs.int_column("item").expect("item column");
        let got = match &plain_answer {
            dpe::server::Response::Indices(v) => v.iter().map(|&i| i as i64).collect::<Vec<_>>(),
            other => panic!("expected indices, got {other:?}"),
        };
        assert_eq!(got, want, "minidb differential failed on {sql}");

        let (_, metrics) = provider
            .explain(&provider.sql_to_request(&enc_sql).expect("lower"))
            .expect("explain");
        let ops: Vec<&str> = metrics.ops.iter().map(|op| op.op).collect();
        println!(
            "\n  {sql}\n  -> {} rows, plan [{}], {} rows scanned, {} ns",
            got.len(),
            ops.join(" -> "),
            metrics.rows_scanned,
            metrics.total_nanos
        );
    }

    println!(
        "\nall SELECTs: encrypted spelling ≡ plaintext spelling ≡ minidb on \
         the mirror ✓"
    );
}
