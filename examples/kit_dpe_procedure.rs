//! The KIT-DPE procedure, step by step, for all four distance measures —
//! the paper's §III-B/§IV as an interactive walkthrough.
//!
//! Run: `cargo run --release --example kit_dpe_procedure`

use dpe::core::procedure::run_kit_dpe;
use dpe::core::table1;
use dpe::core::{EquivalenceNotion, Taxonomy};

fn main() {
    println!("The property-preserving encryption taxonomy (Fig. 1):\n");
    println!("{}", Taxonomy.render());

    println!("\nRunning the four KIT-DPE steps per distance measure:\n");
    for notion in EquivalenceNotion::ALL {
        println!("{}", run_kit_dpe(notion));
    }

    println!("The derived Table I:\n");
    println!("{}", table1::render_table());

    let mismatches = table1::check_against_paper();
    if mismatches.is_empty() {
        println!("Every cell matches the published table — the procedure is reproducible.");
    } else {
        println!("Derivation diverged from the paper: {mismatches:#?}");
    }
}
