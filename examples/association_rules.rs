//! Association-rule mining over an *encrypted* SQL query log — the use
//! case the paper's conclusion points at (reference [17]: mining OLAP
//! query-log preferences for proactive personalization).
//!
//! The service provider receives only the structurally-encrypted log,
//! treats each query's feature set as a transaction, and runs Apriori.
//! Because structural equivalence is a bijective renaming of features, the
//! provider finds the *same* frequent patterns and rules (same supports,
//! same confidences); the owner decrypts the rule items locally.
//!
//! Run: `cargo run --release --example association_rules`

use dpe::core::scheme::{QueryEncryptor, StructuralDpe};
use dpe::crypto::MasterKey;
use dpe::mining::apriori::{association_rules, frequent_itemsets, Transaction};
use dpe::sql::feature_set;
use dpe::workload::{LogConfig, LogGenerator};
use std::collections::BTreeSet;

fn feature_transactions(log: &[dpe::sql::Query]) -> Vec<Transaction<String>> {
    log.iter()
        .map(|q| {
            feature_set(q)
                .iter()
                .map(|f| f.to_string())
                .collect::<BTreeSet<_>>()
        })
        .collect()
}

fn main() {
    // The data owner's log, and the outsourced encrypted copy.
    let log = LogGenerator::generate(&LogConfig {
        queries: 100,
        seed: 0xCAFE,
        ..Default::default()
    });
    let mut scheme = StructuralDpe::new(&MasterKey::from_bytes([0x33; 32]), 2);
    let enc_log = scheme.encrypt_log(&log).expect("encryption");

    // === At the service provider: mine the ciphertext log. ===
    let enc_tx = feature_transactions(&enc_log);
    let min_support = 8;
    let fi_enc = frequent_itemsets(&enc_tx, min_support);
    let rules_enc = association_rules(&enc_tx, &fi_enc, 0.8);
    println!(
        "provider mined {} frequent itemsets, {} rules (support ≥ {min_support}, conf ≥ 0.8) — all over ciphertext",
        fi_enc.len(),
        rules_enc.len()
    );

    // === At the owner: same mining on plaintext for comparison. ===
    let plain_tx = feature_transactions(&log);
    let fi_plain = frequent_itemsets(&plain_tx, min_support);
    let rules_plain = association_rules(&plain_tx, &fi_plain, 0.8);

    // Identical pattern structure: counts, supports and confidences match.
    assert_eq!(fi_plain.len(), fi_enc.len());
    assert_eq!(rules_plain.len(), rules_enc.len());
    let mut sup_p: Vec<(usize, usize)> = fi_plain
        .iter()
        .map(|f| (f.items.len(), f.support))
        .collect();
    let mut sup_e: Vec<(usize, usize)> =
        fi_enc.iter().map(|f| (f.items.len(), f.support)).collect();
    sup_p.sort_unstable();
    sup_e.sort_unstable();
    assert_eq!(sup_p, sup_e);
    println!("itemset/rule structure identical on plaintext and ciphertext ✓");

    // Show a few plaintext rules (what the owner sees after local decrypt)
    // against their ciphertext counterparts (what the provider saw).
    println!("\ntop rules (plaintext view | support | confidence):");
    let mut by_conf = rules_plain.clone();
    by_conf.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then(b.support.cmp(&a.support))
    });
    for rule in by_conf.iter().take(5) {
        let lhs: Vec<&str> = rule.antecedent.iter().map(String::as_str).collect();
        let rhs: Vec<&str> = rule.consequent.iter().map(String::as_str).collect();
        println!(
            "  {{{}}} ⇒ {{{}}}   support {} confidence {:.2}",
            lhs.join(", "),
            rhs.join(", "),
            rule.support,
            rule.confidence
        );
    }

    println!("\nciphertext counterpart of the top rule (provider's view):");
    if let Some(enc_rule) = rules_enc.first() {
        let lhs: Vec<&str> = enc_rule.antecedent.iter().map(String::as_str).collect();
        println!("  {{{}}} ⇒ …", lhs.join(", "));
    }
}
