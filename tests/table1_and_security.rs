//! Integration: the Definition-6 engine reproduces Table I; the attack
//! battery reproduces the Fig. 1 ordering; the §IV-C security comparison
//! holds.

use dpe::attacks::{equality_advantage, frequency_attack, sorting_attack};
use dpe::core::table1;
use dpe::core::{EncryptionClass, Taxonomy};
use dpe::crypto::kdf::SlotLabel;
use dpe::crypto::scheme::SymmetricScheme;
use dpe::crypto::{DetScheme, MasterKey, ProbScheme};
use dpe::ope::{OpeDomain, OpeScheme};
use dpe::workload::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn derived_table_1_matches_published_table() {
    let mismatches = table1::check_against_paper();
    assert!(mismatches.is_empty(), "{mismatches:#?}");
}

#[test]
fn taxonomy_is_consistent_with_class_capabilities() {
    // Every subclass inherits the preserved properties of its superclass.
    for (sub, sup) in Taxonomy.subclass_edges() {
        if sup.preserves_equality() {
            assert!(
                sub.preserves_equality(),
                "{sub} must inherit equality from {sup}"
            );
        }
        if sup.preserves_order() {
            assert!(sub.preserves_order(), "{sub} must inherit order from {sup}");
        }
        assert!(sub.security_level() <= sup.security_level());
    }
}

fn skewed_column(
    n: usize,
    distinct: usize,
    seed: u64,
) -> (Vec<i64>, Vec<String>, Vec<(String, usize)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(distinct, 1.1);
    let plain: Vec<i64> = (0..n)
        .map(|_| 500 + zipf.sample(&mut rng) as i64 * 13)
        .collect();
    let truth: Vec<String> = plain.iter().map(|v| v.to_string()).collect();
    let mut aux: std::collections::BTreeMap<String, usize> = Default::default();
    for t in &truth {
        *aux.entry(t.clone()).or_default() += 1;
    }
    (plain, truth, aux.into_iter().collect())
}

#[test]
fn attack_success_orders_classes_like_fig_1() {
    let master = MasterKey::from_bytes([0x77; 32]);
    let mut rng = StdRng::seed_from_u64(9);
    let (plain, truth, aux) = skewed_column(800, 12, 9);

    // PROB: frequency analysis fails.
    let prob = ProbScheme::new(&SlotLabel::Constant("t").derive(&master));
    let cts: Vec<String> = plain
        .iter()
        .map(|v| prob.encrypt(&v.to_be_bytes(), &mut rng).to_hex())
        .collect();
    let prob_freq = frequency_attack(&cts, &truth, &aux).success_rate();

    // DET: frequency analysis succeeds on the skewed head.
    let det = DetScheme::new(&SlotLabel::Constant("t").derive(&master));
    let cts: Vec<String> = plain
        .iter()
        .map(|v| det.encrypt(&v.to_be_bytes(), &mut rng).to_hex())
        .collect();
    let det_freq = frequency_attack(&cts, &truth, &aux).success_rate();

    // OPE: the sorting attack recovers everything.
    let ope = OpeScheme::new(
        &SlotLabel::Constant("t").derive(&master),
        OpeDomain::new(0, 1 << 16),
    );
    let ope_cts: Vec<u128> = plain
        .iter()
        .map(|&v| ope.encrypt(v as u64).unwrap())
        .collect();
    let ope_sort = sorting_attack(&ope_cts, &plain, &plain).success_rate();

    assert!(
        prob_freq < 0.35,
        "PROB leaks at most the majority guess: {prob_freq}"
    );
    assert!(
        det_freq > 0.8,
        "DET frequency attack should dominate: {det_freq}"
    );
    assert!(ope_sort == 1.0, "OPE sorting attack is total: {ope_sort}");
    assert!(
        prob_freq < det_freq,
        "PROB must beat DET (Fig. 1 row order)"
    );

    // And the equality game separates PROB from DET directly.
    let prob_adv = equality_advantage(&prob, 200, &mut rng);
    let det_adv = equality_advantage(&det, 200, &mut rng);
    assert!(
        prob_adv < 0.25 && det_adv == 1.0,
        "prob_adv={prob_adv}, det_adv={det_adv}"
    );
}

#[test]
fn security_levels_of_derived_rows_reflect_iv_c() {
    use dpe::core::selection::derive_row;
    use dpe::core::EquivalenceNotion::*;
    // Structural (PROB constants) is the most secure row…
    let structural = derive_row(Structural).enc_const.weakest_level();
    let token = derive_row(Token).enc_const.weakest_level();
    let result = derive_row(Result).enc_const.weakest_level();
    assert!(structural > token && token > result);
    // …and access-area strictly improves on result for aggregate-only
    // constants while matching elsewhere.
    let access = derive_row(AccessArea).enc_const;
    let result_const = derive_row(Result).enc_const;
    use dpe::core::ConstChoice::PerUsage;
    let (
        PerUsage {
            aggregate_only: a, ..
        },
        PerUsage {
            aggregate_only: r, ..
        },
    ) = (&access, &result_const)
    else {
        panic!("expected composite choices");
    };
    assert_eq!(a, &EncryptionClass::Prob);
    assert_eq!(r, &EncryptionClass::Hom);
    assert!(a.security_level() > r.security_level());
}
