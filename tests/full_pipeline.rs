//! Integration: the full KIT-DPE pipeline for every Table I row, across
//! crates — workload generation → scheme derivation → log (and database)
//! encryption → exhaustive Definition-1 verification → mining invariance.

use dpe::core::dpe::verify_dpe;
use dpe::core::scheme::{AccessAreaDpe, QueryEncryptor, ResultDpe, StructuralDpe, TokenDpe};
use dpe::core::verify::mining_agreement;
use dpe::cryptdb::column::CryptDbConfig;
use dpe::crypto::MasterKey;
use dpe::distance::{
    AccessAreaDistance, DistanceMatrix, ResultDistance, StructureDistance, TokenDistance,
};
use dpe::mining::{DbscanConfig, OutlierConfig};
use dpe::workload::{generate_database, sky_catalog, sky_domains, LogConfig, LogGenerator};

fn master() -> MasterKey {
    MasterKey::from_bytes([0xE1; 32])
}

fn log(n: usize, seed: u64) -> Vec<dpe::sql::Query> {
    LogGenerator::generate(&LogConfig {
        queries: n,
        seed,
        ..Default::default()
    })
}

#[test]
fn token_row_end_to_end() {
    let log = log(50, 1);
    let mut scheme = TokenDpe::new(&master());
    let enc = scheme.encrypt_log(&log).unwrap();
    let report = verify_dpe(&log, &enc, &TokenDistance, &TokenDistance).unwrap();
    assert!(report.preserved, "{}", report.verdict());
    assert_eq!(report.pairs_checked, 50 * 49 / 2);
}

#[test]
fn structural_row_end_to_end() {
    let log = log(50, 2);
    let mut scheme = StructuralDpe::new(&master(), 11);
    let enc = scheme.encrypt_log(&log).unwrap();
    let report = verify_dpe(&log, &enc, &StructureDistance, &StructureDistance).unwrap();
    assert!(report.preserved, "{}", report.verdict());
}

#[test]
fn access_area_row_end_to_end() {
    let log = log(50, 3);
    let mut scheme = AccessAreaDpe::new(&master(), &sky_domains(), &log, 5);
    let enc = scheme.encrypt_log(&log).unwrap();
    let d_plain = AccessAreaDistance::new(sky_domains());
    let d_enc = AccessAreaDistance::new(scheme.encrypted_domains().unwrap());
    let report = verify_dpe(&log, &enc, &d_plain, &d_enc).unwrap();
    assert!(report.preserved, "{}", report.verdict());
}

#[test]
fn result_row_end_to_end() {
    let db = generate_database(50, 4);
    let log = LogGenerator::generate(&LogConfig::result_safe(40, 4));
    let config = CryptDbConfig::default().with_join_group("obj", &["objid", "bestobjid"]);
    let mut scheme =
        ResultDpe::new(&db, &sky_catalog(), &sky_domains(), &config, &master()).unwrap();
    scheme.prepare_for_log(&log).unwrap();
    let enc = scheme.encrypt_log(&log).unwrap();
    let d_plain = ResultDistance::new(&db);
    let d_enc = ResultDistance::new(scheme.encrypted_database());
    let report = verify_dpe(&log, &enc, &d_plain, &d_enc).unwrap();
    assert!(report.preserved, "{}", report.verdict());
}

#[test]
fn mining_results_identical_under_token_dpe() {
    let log = log(60, 6);
    let mut scheme = TokenDpe::new(&master());
    let enc = scheme.encrypt_log(&log).unwrap();
    let m_plain = DistanceMatrix::compute(&log, &TokenDistance).unwrap();
    let m_enc = DistanceMatrix::compute(&enc, &TokenDistance).unwrap();
    assert!(
        m_plain.identical(&m_enc),
        "max diff {}",
        m_plain.max_abs_diff(&m_enc)
    );
    let agreement = mining_agreement(
        &m_plain,
        &m_enc,
        4,
        DbscanConfig {
            eps: 0.45,
            min_pts: 3,
        },
        OutlierConfig { p: 0.7, d: 0.6 },
    );
    assert!(agreement.all_identical, "{agreement:?}");
}

#[test]
fn different_master_keys_give_different_ciphertexts_same_distances() {
    let log = log(20, 7);
    let mut s1 = TokenDpe::new(&MasterKey::from_bytes([1; 32]));
    let mut s2 = TokenDpe::new(&MasterKey::from_bytes([2; 32]));
    let e1 = s1.encrypt_log(&log).unwrap();
    let e2 = s2.encrypt_log(&log).unwrap();
    assert_ne!(e1, e2, "key rotation must change ciphertexts");
    let m1 = DistanceMatrix::compute(&e1, &TokenDistance).unwrap();
    let m2 = DistanceMatrix::compute(&e2, &TokenDistance).unwrap();
    assert!(m1.identical(&m2), "distances are key-independent");
}
