//! Property tests over the central theorem-shaped claims: for random logs,
//! the derived schemes preserve their measures exactly (Definition 1), and
//! the c-equivalence commuting squares hold (Definition 2).

use dpe::core::dpe::verify_dpe;
use dpe::core::scheme::{AccessAreaDpe, QueryEncryptor, StructuralDpe, TokenDpe};
use dpe::core::verify::{structural_commuting_square, token_commuting_square};
use dpe::crypto::MasterKey;
use dpe::distance::{AccessAreaDistance, StructureDistance, TokenDistance};
use dpe::workload::{sky_domains, LogConfig, LogGenerator};
use proptest::prelude::*;

fn small_log(seed: u64, n: usize) -> Vec<dpe::sql::Query> {
    LogGenerator::generate(&LogConfig {
        queries: n,
        seed,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn token_dpe_preserves_for_random_logs(seed in 0u64..10_000, key in 0u8..255) {
        let log = small_log(seed, 12);
        let mut scheme = TokenDpe::new(&MasterKey::from_bytes([key; 32]));
        let enc = scheme.encrypt_log(&log).unwrap();
        let report = verify_dpe(&log, &enc, &TokenDistance, &TokenDistance).unwrap();
        prop_assert!(report.preserved, "{}", report.verdict());
    }

    #[test]
    fn structural_dpe_preserves_for_random_logs(seed in 0u64..10_000) {
        let log = small_log(seed, 12);
        let mut scheme = StructuralDpe::new(&MasterKey::from_bytes([3; 32]), seed);
        let enc = scheme.encrypt_log(&log).unwrap();
        let report = verify_dpe(&log, &enc, &StructureDistance, &StructureDistance).unwrap();
        prop_assert!(report.preserved, "{}", report.verdict());
    }

    #[test]
    fn access_area_dpe_preserves_for_random_logs(seed in 0u64..10_000) {
        let log = small_log(seed, 10);
        let mut scheme = AccessAreaDpe::new(
            &MasterKey::from_bytes([4; 32]),
            &sky_domains(),
            &log,
            seed,
        );
        let enc = scheme.encrypt_log(&log).unwrap();
        let d_plain = AccessAreaDistance::new(sky_domains());
        let d_enc = AccessAreaDistance::new(scheme.encrypted_domains().unwrap());
        let report = verify_dpe(&log, &enc, &d_plain, &d_enc).unwrap();
        prop_assert!(report.preserved, "{}", report.verdict());
    }

    #[test]
    fn token_commuting_square_for_random_queries(seed in 0u64..10_000) {
        let log = small_log(seed, 6);
        let mut scheme = TokenDpe::new(&MasterKey::from_bytes([5; 32]));
        for q in &log {
            prop_assert!(token_commuting_square(&mut scheme, q).unwrap(), "{q}");
        }
    }

    #[test]
    fn structural_commuting_square_for_random_queries(seed in 0u64..10_000) {
        let log = small_log(seed, 6);
        let mut scheme = StructuralDpe::new(&MasterKey::from_bytes([6; 32]), seed);
        for q in &log {
            prop_assert!(structural_commuting_square(&mut scheme, q).unwrap(), "{q}");
        }
    }
}
