//! Integration: the outsourced serving story end-to-end.
//!
//! The data owner encrypts each tenant's query log with a DPE scheme and
//! hands the ciphertexts to the service provider's `dpe-server`. Because
//! the server's answers are pure functions of per-shard distance matrices
//! and DPE preserves every pairwise distance, a server loaded with
//! **ciphertexts** must answer every concurrent kNN / range / LOF / outlier
//! request **bit-identically** to a server loaded with the plaintexts —
//! including across streaming inserts of freshly encrypted batches, and
//! including the whole-shard clustering kinds (DBSCAN / k-medoids /
//! hierarchical cuts), whose canonical labels, medoid identities and cost
//! bits are all pure functions of the preserved distances.

use dpe::core::scheme::{QueryEncryptor, StructuralDpe, TokenDpe};
use dpe::crypto::MasterKey;
use dpe::distance::{StructureDistance, TokenDistance};
use dpe::mining::Linkage;
use dpe::server::{Request, Server};
use dpe::sql::Query;
use dpe::workload::{LogConfig, LogGenerator};

const SHARDS: usize = 3;

fn tenant_log(shard: usize, n: usize) -> Vec<Query> {
    LogGenerator::generate(&LogConfig {
        queries: n,
        seed: 0xBEEF + shard as u64,
        ..Default::default()
    })
}

fn request_stream(per_shard: usize) -> Vec<Request> {
    let mut reqs = Vec::new();
    for shard in 0..SHARDS {
        for i in 0..21 {
            reqs.push(match i % 7 {
                0 => Request::Knn {
                    shard,
                    item: (i * 5) % per_shard,
                    k: 1 + i % 6,
                },
                1 => Request::Range {
                    shard,
                    item: (i * 3) % per_shard,
                    radius: 0.15 * ((i % 5) as f64) + 0.1,
                },
                2 => Request::Lof {
                    shard,
                    min_pts: 2 + i % 3,
                },
                3 => Request::Dbscan {
                    shard,
                    eps: 0.25 + 0.1 * ((i % 3) as f64),
                    min_pts: 2 + i % 2,
                },
                4 => Request::KMedoids {
                    shard,
                    k: 1 + i % 4,
                },
                5 => Request::Hierarchical {
                    shard,
                    linkage: [Linkage::Complete, Linkage::Single, Linkage::Average][i % 3],
                    k: 1 + (i * 2) % per_shard,
                },
                _ => Request::Outliers {
                    shard,
                    p: 0.7,
                    d: 0.5,
                },
            });
        }
    }
    reqs
}

#[test]
fn encrypted_server_answers_bit_identically_to_plaintext_server() {
    const PER_SHARD: usize = 22;
    let mut scheme = TokenDpe::new(&MasterKey::from_bytes([0x41; 32]));

    let plain = Server::builder(TokenDistance)
        .shards(SHARDS)
        .cache_capacity(128)
        .build();
    let encrypted = Server::builder(TokenDistance)
        .shards(SHARDS)
        .cache_capacity(128)
        .build();
    for shard in 0..SHARDS {
        let log = tenant_log(shard, PER_SHARD);
        let enc = scheme.encrypt_log(&log).unwrap();
        plain.ingest(shard, &log).unwrap();
        encrypted.ingest(shard, &enc).unwrap();
    }

    let requests = request_stream(PER_SHARD);
    let a = plain.serve_batch(&requests, 4);
    let b = encrypted.serve_batch(&requests, 4);
    for ((x, y), req) in a.iter().zip(&b).zip(&requests) {
        assert!(
            x.as_ref().unwrap().bits_eq(y.as_ref().unwrap()),
            "plaintext and ciphertext servers diverged on {req:?}"
        );
    }
}

#[test]
fn streaming_encrypted_ingest_preserves_equivalence() {
    const PER_SHARD: usize = 16;
    const EXTRA: usize = 6;
    let mut scheme = StructuralDpe::new(&MasterKey::from_bytes([0x52; 32]), 11);

    let plain = Server::builder(StructureDistance)
        .shards(SHARDS)
        .cache_capacity(64)
        .build();
    let encrypted = Server::builder(StructureDistance)
        .shards(SHARDS)
        .cache_capacity(64)
        .build();
    for shard in 0..SHARDS {
        let log = tenant_log(shard, PER_SHARD);
        let enc = scheme.encrypt_log(&log).unwrap();
        plain.ingest(shard, &log).unwrap();
        encrypted.ingest(shard, &enc).unwrap();
    }

    // Warm both caches, then stream in a freshly encrypted batch per shard
    // and re-serve: the epoch bump must keep both sides in lockstep.
    let requests = request_stream(PER_SHARD);
    let _ = plain.serve_batch(&requests, 2);
    let _ = encrypted.serve_batch(&requests, 2);

    for shard in 0..SHARDS {
        let batch = tenant_log(shard + 50, EXTRA);
        let enc = scheme.encrypt_log(&batch).unwrap();
        plain.ingest(shard, &batch).unwrap();
        encrypted.ingest(shard, &enc).unwrap();
    }

    let requests = request_stream(PER_SHARD + EXTRA);
    let a = plain.serve_batch(&requests, 4);
    let b = encrypted.serve_batch(&requests, 4);
    for ((x, y), req) in a.iter().zip(&b).zip(&requests) {
        assert!(
            x.as_ref().unwrap().bits_eq(y.as_ref().unwrap()),
            "post-ingest divergence on {req:?}"
        );
    }
}

#[test]
fn concurrent_clients_on_the_encrypted_store() {
    const PER_SHARD: usize = 18;
    let mut scheme = TokenDpe::new(&MasterKey::from_bytes([0x63; 32]));
    let encrypted = Server::builder(TokenDistance)
        .shards(SHARDS)
        .cache_capacity(128)
        .build();
    let plain = Server::builder(TokenDistance)
        .shards(SHARDS)
        .cache_capacity(0)
        .build();
    for shard in 0..SHARDS {
        let log = tenant_log(shard, PER_SHARD);
        encrypted
            .ingest(shard, &scheme.encrypt_log(&log).unwrap())
            .unwrap();
        plain.ingest(shard, &log).unwrap();
    }

    // 6 client threads submit against the ciphertext store; the drained
    // answers must match uncached plaintext dispatch one-for-one.
    let mut submissions = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|c| {
                let encrypted = &encrypted;
                scope.spawn(move || {
                    request_stream(PER_SHARD)
                        .into_iter()
                        .skip(c)
                        .step_by(3)
                        .map(|req| (encrypted.submit(req.clone()).unwrap(), req))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            submissions.extend(h.join().unwrap());
        }
    });
    let results = encrypted.drain(4);
    for (ticket, request) in &submissions {
        let (_, result) = results.iter().find(|(t, _)| t == ticket).unwrap();
        let expect = plain.serve_one_uncached(request).unwrap();
        assert!(
            result.as_ref().unwrap().bits_eq(&expect),
            "{request:?} diverged on the encrypted store"
        );
    }
}
