//! Integration: CryptDB transparency across the whole workload — encrypted
//! execution equals plaintext execution — plus onion-policy enforcement.

use dpe::cryptdb::column::{ColumnPolicy, CryptDbConfig};
use dpe::cryptdb::{CryptDbError, CryptDbProxy};
use dpe::crypto::MasterKey;
use dpe::minidb::execute;
use dpe::sql::parse_query;
use dpe::workload::{generate_database, sky_catalog, sky_domains, LogConfig, LogGenerator};

fn proxy(seed: u64) -> (dpe::minidb::Database, CryptDbProxy) {
    let plain = generate_database(50, seed);
    let config = CryptDbConfig::default().with_join_group("obj", &["objid", "bestobjid"]);
    let proxy = CryptDbProxy::new(
        &plain,
        &sky_catalog(),
        &sky_domains(),
        &config,
        &MasterKey::from_bytes([0xAB; 32]),
    )
    .unwrap();
    (plain, proxy)
}

#[test]
fn workload_transparency_100_queries() {
    let (plain, mut proxy) = proxy(0x99);
    let log = LogGenerator::generate(&LogConfig {
        queries: 100,
        seed: 0x99,
        ..Default::default()
    });
    for q in &log {
        let expect = execute(&plain, q).unwrap();
        let got = proxy.execute(q).unwrap();
        let mut a = expect.rows;
        let mut b = got.rows;
        a.sort();
        b.sort();
        assert_eq!(a, b, "divergence on {q}");
    }
}

#[test]
fn rnd_frozen_columns_cannot_be_queried_but_can_be_fetched() {
    let plain = generate_database(30, 7);
    let config = CryptDbConfig::default().with_policy("z", ColumnPolicy::ProbOnly);
    let mut proxy = CryptDbProxy::new(
        &plain,
        &sky_catalog(),
        &sky_domains(),
        &config,
        &MasterKey::from_bytes([0xCD; 32]),
    )
    .unwrap();

    // Fetching the column end-to-end still works (the proxy decrypts RND).
    let q = parse_query("SELECT z FROM specobj").unwrap();
    let got = proxy.execute(&q).unwrap();
    let expect = execute(&plain, &q).unwrap();
    let mut a = expect.rows;
    let mut b = got.rows;
    a.sort();
    b.sort();
    assert_eq!(a, b);

    // Predicates are refused: equality needs DET (forbidden), ranges need
    // ORD (absent).
    let q = parse_query("SELECT specid FROM specobj WHERE z = 5").unwrap();
    assert!(matches!(
        proxy.execute(&q),
        Err(CryptDbError::AdjustmentForbidden(_))
    ));
    let q = parse_query("SELECT specid FROM specobj WHERE z > 5").unwrap();
    assert!(matches!(
        proxy.execute(&q),
        Err(CryptDbError::MissingOnion { .. })
    ));
}

#[test]
fn encrypted_execution_is_stable_across_repeats() {
    let (_, mut proxy) = proxy(0x44);
    let q =
        parse_query("SELECT class, COUNT(*) FROM photoobj GROUP BY class ORDER BY class").unwrap();
    let first = proxy.execute(&q).unwrap();
    for _ in 0..3 {
        assert_eq!(proxy.execute(&q).unwrap().rows, first.rows);
    }
}

#[test]
fn hom_aggregates_match_plaintext_on_workload() {
    let (plain, mut proxy) = proxy(0x55);
    for sql in [
        "SELECT SUM(z) FROM specobj",
        "SELECT AVG(rmag) FROM photoobj WHERE class = 'STAR'",
        "SELECT SUM(ra), AVG(dec) FROM photoobj WHERE rmag BETWEEN 1500 AND 2500",
    ] {
        let q = parse_query(sql).unwrap();
        assert_eq!(
            proxy.execute(&q).unwrap().rows,
            execute(&plain, &q).unwrap().rows,
            "{sql}"
        );
    }
}
