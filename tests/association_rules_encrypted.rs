//! Integration: the paper's future-work pointer — association-rule mining
//! over encrypted SQL logs — works under the structural DPE scheme.
//!
//! Transactions are the feature sets of queries (`features(Q)`); structural
//! equivalence guarantees `features(Enc(Q))` is a bijective renaming of
//! `features(Q)`, so frequent itemsets and rules come out with identical
//! supports, confidences and shapes.

use dpe::core::scheme::{QueryEncryptor, StructuralDpe};
use dpe::crypto::MasterKey;
use dpe::mining::apriori::{association_rules, frequent_itemsets, rule_shape, Transaction};
use dpe::sql::feature_set;
use dpe::workload::{LogConfig, LogGenerator};
use std::collections::BTreeSet;

fn feature_transactions(log: &[dpe::sql::Query]) -> Vec<Transaction<String>> {
    log.iter()
        .map(|q| {
            feature_set(q)
                .iter()
                .map(|f| f.to_string())
                .collect::<BTreeSet<_>>()
        })
        .collect()
}

#[test]
fn rules_survive_structural_encryption() {
    let log = LogGenerator::generate(&LogConfig {
        queries: 60,
        seed: 0xAB,
        ..Default::default()
    });
    let mut scheme = StructuralDpe::new(&MasterKey::from_bytes([0x61; 32]), 2);
    let enc_log = scheme.encrypt_log(&log).unwrap();

    let plain_tx = feature_transactions(&log);
    let enc_tx = feature_transactions(&enc_log);

    let min_support = 5;
    let fi_plain = frequent_itemsets(&plain_tx, min_support);
    let fi_enc = frequent_itemsets(&enc_tx, min_support);

    // Same number of frequent itemsets at every size, same support
    // multiset — the encrypted run found the same patterns.
    assert_eq!(fi_plain.len(), fi_enc.len());
    let mut sup_p: Vec<(usize, usize)> = fi_plain
        .iter()
        .map(|f| (f.items.len(), f.support))
        .collect();
    let mut sup_e: Vec<(usize, usize)> =
        fi_enc.iter().map(|f| (f.items.len(), f.support)).collect();
    sup_p.sort_unstable();
    sup_e.sort_unstable();
    assert_eq!(sup_p, sup_e);

    // Rule sets agree in shape (sizes, supports, confidences bit-for-bit).
    let rules_plain = association_rules(&plain_tx, &fi_plain, 0.8);
    let rules_enc = association_rules(&enc_tx, &fi_enc, 0.8);
    assert_eq!(rule_shape(&rules_plain), rule_shape(&rules_enc));
    assert!(
        !rules_plain.is_empty(),
        "workload should produce some rules"
    );
}

#[test]
fn mined_patterns_are_nontrivial() {
    // Sanity: the synthetic workload actually contains co-occurrence
    // structure (template features co-occur), so the test above is not
    // vacuously passing on empty rule sets.
    let log = LogGenerator::generate(&LogConfig {
        queries: 80,
        seed: 0xAC,
        ..Default::default()
    });
    let tx = feature_transactions(&log);
    let fi = frequent_itemsets(&tx, 8);
    let pairs = fi.iter().filter(|f| f.items.len() >= 2).count();
    assert!(
        pairs >= 3,
        "expected co-occurring features, got {pairs} pairs"
    );
}
