//! Integration: the graph case study end-to-end through the facade —
//! KIT-DPE applied to a second data type, composed with the SQL substrate
//! (co-access graphs extracted from an *encrypted* query log).

use dpe::core::scheme::{QueryEncryptor, StructuralDpe};
use dpe::crypto::MasterKey;
use dpe::distance::DistanceMatrix;
use dpe::graphdpe::{
    coaccess_graph, derive_table, verify_graph_dpe, window_coaccess_graph, DetGraphEncryptor,
    EdgeJaccard, Graph, GraphDistance, GraphWorkload, VertexJaccard,
};
use dpe::mining::{agglomerative, dbscan, DbscanConfig, Linkage};
use dpe::workload::{LogConfig, LogGenerator};

#[test]
fn derived_graph_table_is_stable() {
    let table = derive_table();
    let classes: Vec<&str> = table.iter().map(|r| r.enc_vertex.name()).collect();
    assert_eq!(classes, ["DET", "DET", "PROB"]);
}

#[test]
fn encrypted_graph_corpus_clusters_identically() {
    let mut wl = GraphWorkload::new(404);
    let plain = wl.community_corpus(3, 7, 9);
    let enc = DetGraphEncryptor::new(&MasterKey::from_bytes([0x77; 32]));
    let encrypted: Vec<Graph> = plain.iter().map(|g| enc.encrypt_graph(g)).collect();

    for report in [
        verify_graph_dpe(&VertexJaccard, &plain, &encrypted),
        verify_graph_dpe(&EdgeJaccard, &plain, &encrypted),
    ] {
        assert!(report.preserved, "{report}");
    }

    let mp = DistanceMatrix::from_fn(plain.len(), |i, j| {
        EdgeJaccard.distance(&plain[i], &plain[j])
    });
    let me = DistanceMatrix::from_fn(encrypted.len(), |i, j| {
        EdgeJaccard.distance(&encrypted[i], &encrypted[j])
    });
    assert!(mp.identical(&me));
    let cfg = DbscanConfig {
        eps: 0.4,
        min_pts: 2,
    };
    assert_eq!(dbscan(&mp, cfg), dbscan(&me, cfg));
    assert_eq!(
        agglomerative(&mp, Linkage::Average),
        agglomerative(&me, Linkage::Average)
    );
}

/// The two case studies compose: extracting co-access graphs from the
/// *encrypted* log is the same (up to the DET label bijection) as
/// extracting them from the plaintext log and encrypting vertex labels —
/// because `attributes(Enc(Q)) = EncAttr(attributes(Q))` under the
/// structural scheme. Distances therefore agree without sharing plaintext.
#[test]
fn coaccess_graphs_from_encrypted_log_preserve_distances() {
    let log = LogGenerator::generate(&LogConfig {
        queries: 30,
        seed: 0x6A,
        ..Default::default()
    });
    let mut scheme = StructuralDpe::new(&MasterKey::from_bytes([0x55; 32]), 3);
    let enc_log = scheme.encrypt_log(&log).unwrap();

    let plain_graphs: Vec<Graph> = log.iter().map(coaccess_graph).collect();
    let enc_graphs: Vec<Graph> = enc_log.iter().map(coaccess_graph).collect();

    for measure in [&VertexJaccard as &dyn GraphDistance, &EdgeJaccard] {
        for i in 0..plain_graphs.len() {
            for j in i + 1..plain_graphs.len() {
                assert_eq!(
                    measure.distance(&plain_graphs[i], &plain_graphs[j]),
                    measure.distance(&enc_graphs[i], &enc_graphs[j]),
                    "pair ({i}, {j}) under {}",
                    measure.name()
                );
            }
        }
    }
}

#[test]
fn session_windows_fold_consistently() {
    let log = LogGenerator::generate(&LogConfig {
        queries: 12,
        seed: 0x6B,
        ..Default::default()
    });
    let mut scheme = StructuralDpe::new(&MasterKey::from_bytes([0x56; 32]), 3);
    let enc_log = scheme.encrypt_log(&log).unwrap();

    // Fold both logs into 3 session windows of 4 queries.
    let plain_sessions: Vec<Graph> = log.chunks(4).map(window_coaccess_graph).collect();
    let enc_sessions: Vec<Graph> = enc_log.chunks(4).map(window_coaccess_graph).collect();
    let report = verify_graph_dpe(&EdgeJaccard, &plain_sessions, &enc_sessions);
    assert!(report.preserved, "{report}");
    // Structure is preserved per window too.
    for (p, e) in plain_sessions.iter().zip(&enc_sessions) {
        assert_eq!(p.degree_sequence(), e.degree_sequence());
    }
}
