//! Integration: format-preserving encryption as an alternative DET
//! instance for string constants — the §IV-D instance-swap argument.
//!
//! Table I's token row requires DET for `EncA.Const`; *which* DET instance
//! fills the slot is free. The SIV-based `DetScheme` produces opaque hex
//! blobs; `FpeScheme` produces ciphertexts that stay in the column's
//! alphabet and length (the L-EncDB [10] deployment shape). Both are
//! deterministic, so both preserve token equivalence — verified here by
//! running the same token-distance checks under an FPE constant mapping.

use dpe::crypto::{Alphabet, FpeScheme, SymmetricKey};
use dpe::distance::{QueryDistance, TokenDistance};
use dpe::sql::{parse_query, Expr, Literal, Query};

/// Rewrites every string constant of the query through the FPE scheme —
/// a minimal `EncA.Const` instance swap (names left in place to isolate
/// the constant slot).
fn encrypt_constants_fpe(q: &Query, fpe: &FpeScheme) -> Query {
    fn map_expr(e: &Expr, fpe: &FpeScheme) -> Expr {
        let enc_lit = |lit: &Literal| match lit {
            Literal::Str(s) if s.len() >= 2 => Literal::Str(
                fpe.encrypt_str(s, b"const")
                    .expect("alphabet covers workload"),
            ),
            other => other.clone(),
        };
        match e {
            Expr::Comparison { col, op, value } => Expr::Comparison {
                col: col.clone(),
                op: *op,
                value: enc_lit(value),
            },
            Expr::Between { col, low, high } => Expr::Between {
                col: col.clone(),
                low: enc_lit(low),
                high: enc_lit(high),
            },
            Expr::InList { col, list } => Expr::InList {
                col: col.clone(),
                list: list.iter().map(enc_lit).collect(),
            },
            Expr::And(a, b) => Expr::And(Box::new(map_expr(a, fpe)), Box::new(map_expr(b, fpe))),
            Expr::Or(a, b) => Expr::Or(Box::new(map_expr(a, fpe)), Box::new(map_expr(b, fpe))),
            Expr::Not(a) => Expr::Not(Box::new(map_expr(a, fpe))),
            other => other.clone(),
        }
    }
    let mut out = q.clone();
    out.where_clause = q.where_clause.as_ref().map(|w| map_expr(w, fpe));
    out
}

fn workload() -> Vec<Query> {
    [
        "SELECT objid FROM photoobj WHERE class = 'star'",
        "SELECT objid FROM photoobj WHERE class = 'galaxy'",
        "SELECT ra FROM photoobj WHERE class = 'star' AND dec > 5",
        "SELECT ra FROM specobj WHERE specclass IN ('star', 'qso')",
        "SELECT z FROM specobj WHERE specclass = 'qso'",
    ]
    .iter()
    .map(|s| parse_query(s).expect("valid SQL"))
    .collect()
}

#[test]
fn fpe_constants_preserve_token_distance() {
    let fpe = FpeScheme::new(&SymmetricKey::from_bytes([0x3C; 32]), Alphabet::lowercase());
    let log = workload();
    let enc: Vec<Query> = log.iter().map(|q| encrypt_constants_fpe(q, &fpe)).collect();

    for i in 0..log.len() {
        for j in i + 1..log.len() {
            let dp = TokenDistance.distance(&log[i], &log[j]).unwrap();
            let de = TokenDistance.distance(&enc[i], &enc[j]).unwrap();
            assert_eq!(dp, de, "pair ({i}, {j})");
        }
    }
}

#[test]
fn fpe_ciphertexts_stay_in_format() {
    let fpe = FpeScheme::new(&SymmetricKey::from_bytes([0x3D; 32]), Alphabet::lowercase());
    let enc = encrypt_constants_fpe(&workload()[0], &fpe);
    let text = enc.to_string();
    // The constant is still a lowercase 4-letter word — a DB column with a
    // CHAR(4) lowercase constraint would accept the ciphertext unchanged.
    let enc_const = fpe.encrypt_str("star", b"const").unwrap();
    assert_eq!(enc_const.len(), 4);
    assert!(Alphabet::lowercase().spells(&enc_const));
    assert!(text.contains(&enc_const), "{text}");
    assert!(!text.contains("star"), "plaintext constant leaked: {text}");
}

#[test]
fn fpe_instances_with_different_keys_disagree() {
    let a = FpeScheme::new(&SymmetricKey::from_bytes([1; 32]), Alphabet::lowercase());
    let b = FpeScheme::new(&SymmetricKey::from_bytes([2; 32]), Alphabet::lowercase());
    assert_ne!(
        a.encrypt_str("galaxy", b"const").unwrap(),
        b.encrypt_str("galaxy", b"const").unwrap()
    );
}
